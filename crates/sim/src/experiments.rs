//! One function per table/figure of the paper's evaluation (§5–§6).
//!
//! Every function returns a [`TextTable`] whose rows are the series the
//! paper plots. The `figures` binary exposes them on the command line;
//! `EXPERIMENTS.md` records paper-vs-measured for each.
//!
//! Runs are deterministic; independent runs are executed on worker
//! threads.

use std::collections::HashMap;

use sb_core::MessageType;
use sb_net::TrafficClass;
use sb_proto::ProtocolKind;
use sb_stats::{TextTable, TrafficReport};
use sb_workloads::{AppProfile, Suite};

use crate::config::SimConfig;
use crate::parallel::{parallel_map, AUTO_JOBS};
use crate::result::RunResult;
use crate::runner::run_simulation;

/// Knobs for an experiment sweep.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Committed instructions per thread (the paper runs to completion on
    /// reference inputs; we run a fixed steady-state window).
    pub insns_per_thread: u64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for independent runs ([`AUTO_JOBS`] = one per
    /// hardware thread). Only wall-clock depends on this; every table is
    /// byte-identical at any value.
    pub jobs: usize,
    /// Intra-run parallel domains per simulation (see
    /// [`SimConfig::domains`]). Like `jobs`, only wall-clock depends on
    /// this; every table is byte-identical at any value.
    pub domains: usize,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep {
            insns_per_thread: 20_000,
            seed: 0x5ca1ab1e,
            jobs: AUTO_JOBS,
            domains: 1,
        }
    }
}

/// A cache of completed runs keyed by (app, cores, protocol), filled in
/// parallel. The 1-processor normalization runs are keyed with
/// `cores == 0`.
pub struct RunSet {
    sweep: Sweep,
    runs: HashMap<(String, u16, ProtocolKind), RunResult>,
}

impl RunSet {
    /// Executes every (app × cores × protocol) combination plus the
    /// 1-processor normalization runs, in parallel across OS threads.
    pub fn collect(
        apps: &[AppProfile],
        cores_list: &[u16],
        protocols: &[ProtocolKind],
        sweep: &Sweep,
        with_single: bool,
    ) -> RunSet {
        let mut work: Vec<(String, u16, ProtocolKind, SimConfig)> = Vec::new();
        for app in apps {
            for &cores in cores_list {
                for &p in protocols {
                    let mut cfg = SimConfig::paper_default(cores, *app, p);
                    cfg.insns_per_thread = sweep.insns_per_thread;
                    cfg.seed = sweep.seed;
                    cfg.domains = sweep.domains;
                    work.push((app.name.to_string(), cores, p, cfg));
                }
            }
            if with_single {
                // One normalization run per (app, parallel size): the
                // single processor executes the whole problem.
                for &cores in cores_list {
                    let mut cfg = SimConfig::single_processor(*app, cores, sweep.insns_per_thread);
                    cfg.seed = sweep.seed;
                    cfg.domains = sweep.domains;
                    work.push((
                        format!("{}@1p{}", app.name, cores),
                        0,
                        ProtocolKind::ScalableBulk,
                        cfg,
                    ));
                }
            }
        }
        let results = parallel_map(&work, sweep.jobs, |(_, _, _, cfg)| run_simulation(cfg));
        RunSet {
            sweep: sweep.clone(),
            runs: work
                .into_iter()
                .zip(results)
                .map(|((name, cores, p, _), r)| ((name, cores, p), r))
                .collect(),
        }
    }

    /// The run for (app, cores, protocol).
    pub fn get(&self, app: &str, cores: u16, p: ProtocolKind) -> &RunResult {
        self.runs
            .get(&(app.to_string(), cores, p))
            .unwrap_or_else(|| panic!("missing run {app}/{cores}/{p}"))
    }

    /// The 1-processor normalization run for `app` matched to a
    /// `cores`-way parallel run.
    pub fn single(&self, app: &str, cores: u16) -> &RunResult {
        let key = (format!("{app}@1p{cores}"), 0u16, ProtocolKind::ScalableBulk);
        self.runs
            .get(&key)
            .unwrap_or_else(|| panic!("missing 1p run for {app}@{cores}"))
    }

    /// The sweep parameters used.
    pub fn sweep(&self) -> &Sweep {
        &self.sweep
    }
}

fn suite_apps(suite: Suite) -> Vec<AppProfile> {
    match suite {
        Suite::Splash2 => AppProfile::splash2(),
        Suite::Parsec => AppProfile::parsec(),
    }
}

/// Figures 7 (SPLASH-2) and 8 (PARSEC): normalized execution time broken
/// into Useful / Cache Miss / Commit / Squash, with the speedup over the
/// 1-processor run, per application × core count × protocol.
pub fn exec_time_table(suite: Suite, sweep: &Sweep) -> TextTable {
    let apps = suite_apps(suite);
    let set = RunSet::collect(&apps, &[32, 64], &ProtocolKind::ALL, sweep, true);
    exec_time_table_from(&apps, &set)
}

/// Figures 7/8 from an existing [`RunSet`].
pub fn exec_time_table_from(apps: &[AppProfile], set: &RunSet) -> TextTable {
    let mut t = TextTable::new(vec![
        "app", "cores", "protocol", "useful%", "cache%", "commit%", "squash%", "speedup",
    ]);
    let mut sums: HashMap<(u16, ProtocolKind), (f64, [f64; 4])> = HashMap::new();
    for app in apps {
        for cores in [32u16, 64] {
            let t1 = set.single(app.name, cores).wall_cycles;
            for p in ProtocolKind::ALL {
                let r = set.get(app.name, cores, p);
                let b = &r.breakdown;
                let speedup = t1 as f64 / r.wall_cycles.max(1) as f64;
                t.row(vec![
                    app.name.into(),
                    cores.to_string(),
                    p.label().into(),
                    format!("{:.1}", b.fraction_useful() * 100.0),
                    format!("{:.1}", b.fraction_cache_miss() * 100.0),
                    format!("{:.1}", b.fraction_commit() * 100.0),
                    format!("{:.2}", b.fraction_squash() * 100.0),
                    format!("{speedup:.1}"),
                ]);
                let e = sums.entry((cores, p)).or_insert((0.0, [0.0; 4]));
                e.0 += speedup;
                e.1[0] += b.fraction_useful();
                e.1[1] += b.fraction_cache_miss();
                e.1[2] += b.fraction_commit();
                e.1[3] += b.fraction_squash();
            }
        }
    }
    let n = apps.len() as f64;
    for cores in [32u16, 64] {
        for p in ProtocolKind::ALL {
            let (sp, fr) = sums[&(cores, p)];
            t.row(vec![
                "AVERAGE".into(),
                cores.to_string(),
                p.label().into(),
                format!("{:.1}", fr[0] / n * 100.0),
                format!("{:.1}", fr[1] / n * 100.0),
                format!("{:.1}", fr[2] / n * 100.0),
                format!("{:.2}", fr[3] / n * 100.0),
                format!("{:.1}", sp / n),
            ]);
        }
    }
    t
}

/// Figures 9 (SPLASH-2) / 10 (PARSEC): average number of directories per
/// chunk commit, split into write group and read group, for 32 and 64
/// processors under ScalableBulk.
pub fn dirs_per_commit_table(suite: Suite, sweep: &Sweep) -> TextTable {
    let apps = suite_apps(suite);
    let set = RunSet::collect(
        &apps,
        &[32, 64],
        &[ProtocolKind::ScalableBulk],
        sweep,
        false,
    );
    let mut t = TextTable::new(vec!["app", "cores", "write_group", "read_group", "total"]);
    let mut sums: HashMap<u16, (f64, f64)> = HashMap::new();
    for app in &apps {
        for cores in [32u16, 64] {
            let r = set.get(app.name, cores, ProtocolKind::ScalableBulk);
            let (w, rd) = (r.dirs.mean_write_group(), r.dirs.mean_read_group());
            t.row(vec![
                app.name.into(),
                cores.to_string(),
                format!("{w:.2}"),
                format!("{rd:.2}"),
                format!("{:.2}", w + rd),
            ]);
            let e = sums.entry(cores).or_insert((0.0, 0.0));
            e.0 += w;
            e.1 += rd;
        }
    }
    for cores in [32u16, 64] {
        let (w, rd) = sums[&cores];
        let n = apps.len() as f64;
        t.row(vec![
            "AVERAGE".into(),
            cores.to_string(),
            format!("{:.2}", w / n),
            format!("{:.2}", rd / n),
            format!("{:.2}", (w + rd) / n),
        ]);
    }
    t
}

/// Figures 11 (SPLASH-2) / 12 (PARSEC): the distribution of directories
/// accessed per chunk commit at 64 processors (percent of commits in
/// buckets 0..=14 plus "more").
pub fn dirs_distribution_table(suite: Suite, sweep: &Sweep) -> TextTable {
    let apps = suite_apps(suite);
    let set = RunSet::collect(&apps, &[64], &[ProtocolKind::ScalableBulk], sweep, false);
    let mut header: Vec<String> = vec!["app".into()];
    header.extend((0..=14).map(|k| k.to_string()));
    header.push("more".into());
    let mut t = TextTable::new(header);
    for app in &apps {
        let r = set.get(app.name, 64, ProtocolKind::ScalableBulk);
        let mut row = vec![app.name.to_string()];
        for k in 0..=15 {
            row.push(format!("{:.1}", r.dirs.percent(k)));
        }
        t.row(row);
    }
    t
}

/// Figure 13: distribution (and mean) of chunk-commit latency per
/// protocol, averaged over all 18 applications, for 32 and 64 processors.
/// The paper's 64-processor means are 91 / 411 / 153 / 2954 cycles for
/// ScalableBulk / TCC / SEQ / BulkSC.
pub fn commit_latency_table(sweep: &Sweep) -> TextTable {
    let apps = AppProfile::all();
    let set = RunSet::collect(&apps, &[32, 64], &ProtocolKind::ALL, sweep, false);
    let mut t = TextTable::new(vec![
        "cores", "protocol", "mean", "p50", "p90", "p99", "max",
    ]);
    for cores in [32u16, 64] {
        for p in ProtocolKind::ALL {
            let mut agg = sb_stats::LatencyDist::new();
            for app in &apps {
                agg.merge(&set.get(app.name, cores, p).latency);
            }
            t.row(vec![
                cores.to_string(),
                p.label().into(),
                format!("{:.0}", agg.mean()),
                agg.quantile(0.5).to_string(),
                agg.quantile(0.9).to_string(),
                agg.quantile(0.99).to_string(),
                agg.max().to_string(),
            ]);
        }
    }
    t
}

/// Figures 14 (SPLASH-2) / 15 (PARSEC): the bottleneck ratio per
/// application for ScalableBulk, TCC and SEQ (BulkSC forms no groups) at
/// 64 processors.
pub fn bottleneck_ratio_table(suite: Suite, sweep: &Sweep) -> TextTable {
    let apps = suite_apps(suite);
    let protos = [
        ProtocolKind::ScalableBulk,
        ProtocolKind::Tcc,
        ProtocolKind::Seq,
    ];
    let set = RunSet::collect(&apps, &[64], &protos, sweep, false);
    let mut t = TextTable::new(vec!["app", "ScalableBulk", "TCC", "SEQ"]);
    let mut sums = [0.0f64; 3];
    for app in &apps {
        let vals: Vec<f64> = protos
            .iter()
            .map(|p| set.get(app.name, 64, *p).gauges.bottleneck_ratio())
            .collect();
        for (i, v) in vals.iter().enumerate() {
            sums[i] += v;
        }
        t.row(vec![
            app.name.into(),
            format!("{:.2}", vals[0]),
            format!("{:.2}", vals[1]),
            format!("{:.2}", vals[2]),
        ]);
    }
    let n = apps.len() as f64;
    t.row(vec![
        "AVERAGE".into(),
        format!("{:.2}", sums[0] / n),
        format!("{:.2}", sums[1] / n),
        format!("{:.2}", sums[2] / n),
    ]);
    t
}

/// Figures 16 (SPLASH-2) / 17 (PARSEC): average chunk queue length for
/// TCC and SEQ at 64 processors (chunks do not queue in ScalableBulk).
pub fn queue_length_table(suite: Suite, sweep: &Sweep) -> TextTable {
    let apps = suite_apps(suite);
    let protos = [
        ProtocolKind::Tcc,
        ProtocolKind::Seq,
        ProtocolKind::ScalableBulk,
    ];
    let set = RunSet::collect(&apps, &[64], &protos, sweep, false);
    let mut t = TextTable::new(vec!["app", "TCC", "SEQ", "ScalableBulk"]);
    for app in &apps {
        t.row(vec![
            app.name.into(),
            format!(
                "{:.2}",
                set.get(app.name, 64, ProtocolKind::Tcc)
                    .gauges
                    .mean_queue_length()
            ),
            format!(
                "{:.2}",
                set.get(app.name, 64, ProtocolKind::Seq)
                    .gauges
                    .mean_queue_length()
            ),
            format!(
                "{:.2}",
                set.get(app.name, 64, ProtocolKind::ScalableBulk)
                    .gauges
                    .mean_queue_length()
            ),
        ]);
    }
    t
}

/// Figures 18 (SPLASH-2) / 19 (PARSEC): number and class mix of network
/// messages per protocol at 64 processors, normalized to TCC (=100).
pub fn traffic_table(suite: Suite, sweep: &Sweep) -> TextTable {
    let apps = suite_apps(suite);
    let set = RunSet::collect(&apps, &[64], &ProtocolKind::ALL, sweep, false);
    let mut t = TextTable::new(vec![
        "app",
        "protocol",
        "MemRd",
        "RemoteShRd",
        "RemoteDirtyRd",
        "LargeCMsg",
        "SmallCMsg",
        "total%",
    ]);
    for app in &apps {
        let reference = &set.get(app.name, 64, ProtocolKind::Tcc).traffic;
        for p in ProtocolKind::ALL {
            let rep = TrafficReport::normalized(&set.get(app.name, 64, p).traffic, reference);
            t.row(vec![
                app.name.into(),
                format!("{}", p.letter()),
                format!("{:.1}", rep.percent(TrafficClass::MemRd)),
                format!("{:.1}", rep.percent(TrafficClass::RemoteShRd)),
                format!("{:.1}", rep.percent(TrafficClass::RemoteDirtyRd)),
                format!("{:.1}", rep.percent(TrafficClass::LargeCMessage)),
                format!("{:.1}", rep.percent(TrafficClass::SmallCMessage)),
                format!("{:.1}", rep.total_percent()),
            ]);
        }
    }
    t
}

/// Table 1: the ten ScalableBulk message types.
pub fn message_types_table() -> TextTable {
    let mut t = TextTable::new(vec!["message", "format", "direction", "carries signature"]);
    for m in MessageType::TABLE_1 {
        t.row(vec![
            m.name.into(),
            m.format.into(),
            format!("{:?}", m.direction),
            if m.carries_signature { "yes" } else { "no" }.into(),
        ]);
    }
    t
}

/// Table 2: the simulated system configuration.
pub fn system_config_table() -> TextTable {
    let cfg = SimConfig::paper_default(64, AppProfile::fft(), ProtocolKind::ScalableBulk);
    let mut t = TextTable::new(vec!["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("cores", "32 or 64 in a multicore".into()),
        ("signature size", format!("{} bits", cfg.sig.total_bits())),
        (
            "max active chunks per core",
            cfg.max_active_chunks.to_string(),
        ),
        ("chunk size", "2000 instructions".into()),
        ("interconnect", cfg.net.topology.describe()),
        (
            "interconnect link latency",
            format!("{} cycles", cfg.net.link_latency),
        ),
        ("coherence protocol", "ScalableBulk".into()),
        (
            "L1",
            format!(
                "{}KB/{}-way/32B write-through, {}-cycle round trip",
                cfg.hier.l1.size_bytes / 1024,
                cfg.hier.l1.assoc,
                cfg.hier.l1_round_trip
            ),
        ),
        (
            "L2",
            format!(
                "{}KB/{}-way/32B write-back, {}-cycle round trip",
                cfg.hier.l2.size_bytes / 1024,
                cfg.hier.l2.assoc,
                cfg.hier.l2_round_trip
            ),
        ),
        ("memory roundtrip", format!("{} cycles", cfg.mem_latency)),
        ("page mapping", "first touch".into()),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    t
}

/// Table 3: the simulated protocols.
pub fn protocols_table() -> TextTable {
    let mut t = TextTable::new(vec!["name", "protocol"]);
    t.row(vec!["ScalableBulk".into(), "Protocol proposed".into()]);
    t.row(vec!["TCC".into(), "Scalable TCC [6]".into()]);
    t.row(vec!["SEQ".into(), "SEQ-PRO from [14]".into()]);
    t.row(vec![
        "BulkSC".into(),
        "Protocol from [5] with arbiter in the center".into(),
    ]);
    t
}

/// Ablation: ScalableBulk with and without Optimistic Commit Initiation
/// (§3.3), per application at 64 processors.
pub fn ablation_oci_table(apps: &[AppProfile], sweep: &Sweep) -> TextTable {
    let mut t = TextTable::new(vec!["app", "oci", "wall_cycles", "mean_latency", "commit%"]);
    let mut work: Vec<(&AppProfile, bool, SimConfig)> = Vec::new();
    for app in apps {
        for oci in [true, false] {
            let mut cfg = SimConfig::paper_default(64, *app, ProtocolKind::ScalableBulk);
            cfg.insns_per_thread = sweep.insns_per_thread;
            cfg.seed = sweep.seed;
            cfg.domains = sweep.domains;
            cfg.oci = oci;
            work.push((app, oci, cfg));
        }
    }
    let results = parallel_map(&work, sweep.jobs, |(_, _, cfg)| run_simulation(cfg));
    for ((app, oci, _), r) in work.iter().zip(&results) {
        t.row(vec![
            app.name.into(),
            oci.to_string(),
            r.wall_cycles.to_string(),
            format!("{:.0}", r.latency.mean()),
            format!("{:.1}", r.breakdown.fraction_commit() * 100.0),
        ]);
    }
    t
}

/// Ablation: signature size sweep (512b..4Kb) under ScalableBulk —
/// squash rate and commit latency vs the Table 2 default of 2 Kbit.
pub fn ablation_signature_table(app: AppProfile, sweep: &Sweep) -> TextTable {
    let mut t = TextTable::new(vec![
        "sig_bits",
        "squash_rate%",
        "alias_squash%",
        "mean_latency",
        "wall_cycles",
    ]);
    let work: Vec<(u32, SimConfig)> = [512u32, 1024, 2048, 4096]
        .into_iter()
        .map(|bits| {
            let mut cfg = SimConfig::paper_default(64, app, ProtocolKind::ScalableBulk);
            cfg.insns_per_thread = sweep.insns_per_thread;
            cfg.seed = sweep.seed;
            cfg.domains = sweep.domains;
            cfg.sig = sb_sigs::SignatureConfig::new(bits, 4);
            (bits, cfg)
        })
        .collect();
    let results = parallel_map(&work, sweep.jobs, |(_, cfg)| run_simulation(cfg));
    for ((bits, _), r) in work.iter().zip(&results) {
        let total = (r.commits + r.squashes()).max(1) as f64;
        t.row(vec![
            bits.to_string(),
            format!("{:.2}", r.squash_rate() * 100.0),
            format!("{:.2}", r.squashes_alias as f64 * 100.0 / total),
            format!("{:.0}", r.latency.mean()),
            r.wall_cycles.to_string(),
        ]);
    }
    t
}

/// Extension: SEQ-PRO vs SEQ-TS vs ScalableBulk (§2.1's discussion of
/// SRC's stealing optimization) on directory-hungry applications at 64
/// processors.
pub fn seq_ts_table(sweep: &Sweep) -> TextTable {
    let mut t = TextTable::new(vec![
        "app",
        "protocol",
        "wall_cycles",
        "commit%",
        "mean_latency",
        "queue_len",
    ]);
    let mut work: Vec<(AppProfile, ProtocolKind, SimConfig)> = Vec::new();
    for app in [
        AppProfile::radix(),
        AppProfile::canneal(),
        AppProfile::fft(),
    ] {
        for proto in [
            ProtocolKind::Seq,
            ProtocolKind::SeqTs,
            ProtocolKind::ScalableBulk,
        ] {
            let mut cfg = SimConfig::paper_default(64, app, proto);
            cfg.insns_per_thread = sweep.insns_per_thread;
            cfg.seed = sweep.seed;
            cfg.domains = sweep.domains;
            work.push((app, proto, cfg));
        }
    }
    let results = parallel_map(&work, sweep.jobs, |(_, _, cfg)| run_simulation(cfg));
    for ((app, proto, _), r) in work.iter().zip(&results) {
        t.row(vec![
            app.name.into(),
            proto.label().into(),
            r.wall_cycles.to_string(),
            format!("{:.1}", r.breakdown.fraction_commit() * 100.0),
            format!("{:.0}", r.latency.mean()),
            format!("{:.2}", r.gauges.mean_queue_length()),
        ]);
    }
    t
}

/// Ablation: leader-priority rotation (§3.2.2 fairness) on/off — total
/// commit retries as the unfairness proxy.
pub fn ablation_rotation_table(app: AppProfile, sweep: &Sweep) -> TextTable {
    let mut t = TextTable::new(vec!["rotation", "wall_cycles", "retries", "mean_latency"]);
    let work: Vec<(Option<u64>, SimConfig)> = [None, Some(10_000u64)]
        .into_iter()
        .map(|interval| {
            let mut cfg = SimConfig::paper_default(64, app, ProtocolKind::ScalableBulk);
            cfg.insns_per_thread = sweep.insns_per_thread;
            cfg.seed = sweep.seed;
            cfg.domains = sweep.domains;
            cfg.sb.rotation_interval = interval;
            (interval, cfg)
        })
        .collect();
    let results = parallel_map(&work, sweep.jobs, |(_, cfg)| run_simulation(cfg));
    for ((interval, _), r) in work.iter().zip(&results) {
        t.row(vec![
            interval.map_or("off".to_string(), |i| format!("every {i}")),
            r.wall_cycles.to_string(),
            r.commit_retries.to_string(),
            format!("{:.0}", r.latency.mean()),
        ]);
    }
    t
}

/// Scaling sweep (beyond the paper's 64 cores): FFT under every Table-3
/// protocol at each core count on each interconnect fabric. Reports
/// commit throughput (commits per 10k cycles), its scaling relative to
/// the smallest swept machine of the same (fabric, protocol) series,
/// mean/p95 commit latency, and the dominant critical-path segment —
/// the column that names each protocol's scaling cliff.
///
/// `fabrics` are [`Topology::by_name`](sb_net::Topology::by_name)
/// names (`torus`, `cmesh`, `xtorus`).
///
/// # Panics
///
/// Panics on an unknown fabric name.
pub fn scaling_table(sweep: &Sweep, cores_list: &[u16], fabrics: &[String]) -> TextTable {
    use crate::critical_path::{commit_paths, Attribution};
    use sb_net::Topology;

    let mut cells: Vec<(String, u16, ProtocolKind)> = Vec::new();
    for fabric in fabrics {
        for &cores in cores_list {
            for p in ProtocolKind::ALL {
                cells.push((fabric.clone(), cores, p));
            }
        }
    }
    let rows = parallel_map(&cells, sweep.jobs, |(fabric, cores, p)| {
        let mut cfg = SimConfig::paper_default(*cores, AppProfile::fft(), *p);
        cfg.insns_per_thread = sweep.insns_per_thread;
        cfg.seed = sweep.seed;
        cfg.domains = sweep.domains;
        cfg.trace = true;
        cfg.obs = crate::ObsConfig::on();
        let topo = Topology::by_name(fabric, *cores)
            .unwrap_or_else(|| panic!("unknown fabric {fabric:?}"));
        cfg.set_topology(topo);
        let r = run_simulation(&cfg);
        let paths = commit_paths(&r).expect("trace+obs on, so paths reconstruct");
        let a = Attribution::from_paths(&paths);
        let top = a
            .rows()
            .into_iter()
            .max_by_key(|&(_, cycles, _)| cycles)
            .map(|(name, _, frac)| format!("{name} {:.0}%", frac * 100.0))
            .unwrap_or_else(|| "-".into());
        let throughput = r.commits as f64 / r.wall_cycles.max(1) as f64 * 10_000.0;
        (throughput, r, top)
    });
    let mut t = TextTable::new(vec![
        "fabric",
        "cores",
        "protocol",
        "wall_cycles",
        "commits",
        "commits/10kcyc",
        "scaling",
        "lat_mean",
        "lat_p95",
        "top_path_segment",
    ]);
    // Scaling baseline: the smallest swept machine of each
    // (fabric, protocol) series.
    let base_cores = cores_list.iter().copied().min().unwrap_or(0);
    let mut base: HashMap<(&str, ProtocolKind), f64> = HashMap::new();
    for ((fabric, cores, p), (tp, _, _)) in cells.iter().zip(&rows) {
        if *cores == base_cores {
            base.insert((fabric.as_str(), *p), *tp);
        }
    }
    for ((fabric, cores, p), (tp, r, top)) in cells.iter().zip(&rows) {
        let b = base.get(&(fabric.as_str(), *p)).copied().unwrap_or(0.0);
        let scaling = if b > 0.0 { tp / b } else { 0.0 };
        t.row(vec![
            fabric.clone(),
            cores.to_string(),
            p.label().into(),
            r.wall_cycles.to_string(),
            r.commits.to_string(),
            format!("{tp:.2}"),
            format!("{scaling:.2}x"),
            format!("{:.0}", r.latency.mean()),
            r.latency.p95().to_string(),
            top.clone(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sweep() -> Sweep {
        Sweep {
            insns_per_thread: 6_000,
            seed: 7,
            jobs: AUTO_JOBS,
            domains: 1,
        }
    }

    #[test]
    fn static_tables_match_paper() {
        let t1 = message_types_table();
        assert_eq!(t1.len(), 10, "Table 1 has ten message types");
        let t2 = system_config_table();
        assert!(t2.render().contains("2D torus 8x8"));
        assert!(t2.render().contains("2048 bits"));
        let t3 = protocols_table();
        assert_eq!(t3.len(), 4);
        assert!(t3.render().contains("SEQ-PRO"));
    }

    #[test]
    fn runset_collects_and_indexes() {
        let apps = [AppProfile::fft()];
        let set = RunSet::collect(
            &apps,
            &[8],
            &[ProtocolKind::ScalableBulk],
            &quick_sweep(),
            true,
        );
        let r = set.get("FFT", 8, ProtocolKind::ScalableBulk);
        assert!(r.commits > 0);
        let s = set.single("FFT", 8);
        assert!(s.wall_cycles > r.wall_cycles, "1p run does 8x the work");
        assert_eq!(set.sweep().insns_per_thread, 6_000);
    }

    #[test]
    fn scaling_table_covers_fabrics_and_scales_from_smallest() {
        let sweep = quick_sweep();
        let fabrics = vec!["torus".to_string(), "cmesh".to_string()];
        let t = scaling_table(&sweep, &[8, 16], &fabrics);
        assert_eq!(t.len(), 2 * 2 * 4);
        let text = t.render();
        assert!(text.contains("cmesh"));
        // The smallest machine of each series is its own baseline.
        assert!(text.contains("1.00x"));
    }

    #[test]
    fn exec_time_table_has_all_rows() {
        let apps = [AppProfile::fft(), AppProfile::lu()];
        let set = RunSet::collect(&apps, &[32, 64], &ProtocolKind::ALL, &quick_sweep(), true);
        let t = exec_time_table_from(&apps, &set);
        assert_eq!(t.len(), 2 * 2 * 4 + 2 * 4);
        let text = t.render();
        assert!(text.contains("AVERAGE"));
        assert!(text.contains("BulkSC"));
    }
}
