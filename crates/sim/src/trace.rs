//! Correctness trace: the chunk-lifecycle event stream one run emits.
//!
//! When [`SimConfig::trace`](crate::SimConfig) is on, the machine records
//! every chunk-instance lifecycle transition — execution start, commit
//! (with the exact line footprint), squash, and every bulk invalidation
//! *processed* at a core (with a snapshot of what the core's in-flight
//! chunks had read and written at that moment). The `sb-check` fuzzer
//! replays this stream through an independent serializability oracle:
//!
//! * chunk tags are never reused (a squashed chunk re-executes under a
//!   fresh tag), so tags identify chunk *instances* and "no tag is both
//!   committed and squashed" is well defined;
//! * the commit order itself is the candidate serial order. It is a valid
//!   serialization witness iff no committed chunk had a foreign write set
//!   applied at its core, mid-execution, that intersected what the chunk
//!   had already read or written — exactly the condition the machine's
//!   squash filter is supposed to enforce. The oracle recomputes that
//!   intersection from the recorded snapshots, independently of the
//!   machine's own conflict check, which is what gives it teeth against
//!   an injected conflict-detection bug.
//!
//! Tracing is off by default and entirely passive: it never changes
//! timing or behaviour, only observes it.

use sb_chunks::ChunkTag;
use sb_engine::Cycle;
use sb_mem::{DirId, LineAddr};
use sb_sigs::SigHandle;

/// What one in-flight chunk had accessed when a bulk invalidation was
/// processed at its core.
#[derive(Clone, Debug)]
pub struct ChunkSnapshot {
    /// The in-flight chunk.
    pub tag: ChunkTag,
    /// Lines it had read so far.
    pub reads: Vec<LineAddr>,
    /// Lines it had written so far.
    pub writes: Vec<LineAddr>,
}

/// One chunk-lifecycle event.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A chunk instance began executing at a core.
    ExecStart {
        /// Executing core.
        core: u16,
        /// The fresh chunk instance (tags are never reused).
        tag: ChunkTag,
        /// Simulated time.
        at: Cycle,
    },
    /// A chunk instance committed (the success outcome reached its core
    /// and the chunk retired).
    Committed {
        /// Committing core.
        core: u16,
        /// The committed instance.
        tag: ChunkTag,
        /// Simulated time.
        at: Cycle,
        /// Exact lines the chunk read.
        reads: Vec<LineAddr>,
        /// Exact lines the chunk wrote.
        writes: Vec<LineAddr>,
    },
    /// A chunk instance was squashed (it will re-execute under a new tag).
    Squashed {
        /// Squashed core.
        core: u16,
        /// The squashed instance.
        tag: ChunkTag,
        /// Simulated time.
        at: Cycle,
    },
    /// A bulk invalidation was processed at a core: its W signature was
    /// applied against the core's in-flight chunks (in conservative mode
    /// a held invalidation is recorded when actually processed, not when
    /// delivered).
    InvProcessed {
        /// The core that processed the invalidation.
        core: u16,
        /// The committing chunk whose writes are being published.
        committer: ChunkTag,
        /// The issuing directory.
        from: DirId,
        /// Simulated time.
        at: Cycle,
        /// The published W signature (shared handle, O(1) to record).
        wsig: SigHandle,
        /// What each in-flight chunk at this core had accessed so far.
        inflight: Vec<ChunkSnapshot>,
    },
}

impl TraceEvent {
    fn fold_fingerprint(&self, h: &mut Fnv) {
        match self {
            TraceEvent::ExecStart { core, tag, at } => {
                h.byte(1).u64(*core as u64).tag(*tag).u64(at.as_u64());
            }
            TraceEvent::Committed {
                core,
                tag,
                at,
                reads,
                writes,
            } => {
                h.byte(2).u64(*core as u64).tag(*tag).u64(at.as_u64());
                for l in reads {
                    h.u64(l.as_u64());
                }
                h.byte(0xfe);
                for l in writes {
                    h.u64(l.as_u64());
                }
            }
            TraceEvent::Squashed { core, tag, at } => {
                h.byte(3).u64(*core as u64).tag(*tag).u64(at.as_u64());
            }
            TraceEvent::InvProcessed {
                core,
                committer,
                from,
                at,
                wsig: _,
                inflight,
            } => {
                h.byte(4)
                    .u64(*core as u64)
                    .tag(*committer)
                    .u64(from.0 as u64)
                    .u64(at.as_u64());
                for s in inflight {
                    h.tag(s.tag)
                        .u64(s.reads.len() as u64)
                        .u64(s.writes.len() as u64);
                }
            }
        }
    }
}

/// The ordered event stream of one traced run, plus end-of-run probes.
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    /// Events in processing order (the global event-dispatch order, which
    /// breaks simulated-time ties deterministically).
    pub events: Vec<TraceEvent>,
    /// The protocol's `in_flight()` count at quiescence — per-protocol
    /// cleanup invariant (e.g. ScalableBulk's CSTs must drain to empty).
    pub final_in_flight: usize,
}

impl RunTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// FNV-1a fingerprint of the whole stream. Two runs of the same
    /// `(config, workload seed, perturbation seed)` triple must produce
    /// the same fingerprint — this is what makes a one-line replay
    /// command an exact reproduction, not just a similar failure.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for e in &self.events {
            e.fold_fingerprint(&mut h);
        }
        h.u64(self.final_in_flight as u64);
        h.finish()
    }
}

/// FNV-1a, explicit so the fingerprint is stable across Rust releases
/// (`DefaultHasher` makes no such promise).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) -> &mut Self {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        self
    }
    fn u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
        self
    }
    fn tag(&mut self, t: ChunkTag) -> &mut Self {
        self.u64(t.core().0 as u64).u64(t.seq())
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_mem::CoreId;

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let e1 = TraceEvent::ExecStart {
            core: 0,
            tag: ChunkTag::new(CoreId(0), 1),
            at: Cycle(5),
        };
        let e2 = TraceEvent::Squashed {
            core: 0,
            tag: ChunkTag::new(CoreId(0), 1),
            at: Cycle(9),
        };
        let ab = RunTrace {
            events: vec![e1.clone(), e2.clone()],
            final_in_flight: 0,
        };
        let ba = RunTrace {
            events: vec![e2, e1],
            final_in_flight: 0,
        };
        assert_eq!(ab.fingerprint(), ab.clone().fingerprint());
        assert_ne!(ab.fingerprint(), ba.fingerprint());
        assert_ne!(ab.fingerprint(), RunTrace::new().fingerprint());
        let mut drained = ab.clone();
        drained.final_in_flight = 3;
        assert_ne!(ab.fingerprint(), drained.fingerprint());
    }
}
