//! Protocol-dispatching run entry points.

use sb_baselines::{BulkSc, Seq, SeqTs, Tcc};
use sb_core::ScalableBulk;
use sb_proto::ProtocolKind;
use sb_workloads::AppProfile;

use crate::config::SimConfig;
use crate::machine::Machine;
use crate::result::RunResult;
use crate::sched::Scheduler;

/// Runs one simulation described by `cfg`, instantiating the configured
/// protocol.
///
/// # Examples
///
/// ```
/// use sb_proto::ProtocolKind;
/// use sb_sim::{run_simulation, SimConfig};
/// use sb_workloads::AppProfile;
///
/// let mut cfg = SimConfig::paper_default(8, AppProfile::fft(), ProtocolKind::ScalableBulk);
/// cfg.insns_per_thread = 6_000;
/// let r = run_simulation(&cfg);
/// assert!(r.commits > 0);
/// assert!(r.wall_cycles > 0);
/// ```
pub fn run_simulation(cfg: &SimConfig) -> RunResult {
    run_simulation_with(cfg, None)
}

/// Like [`run_simulation`], dispatching same-cycle event batches through
/// `sched` (see [`Scheduler`](crate::sched::Scheduler)). Used by the
/// `sb-check` bounded-interleaving explorer to enumerate and replay
/// schedules; always runs the inline (domains = 1) superphase loop.
pub fn run_simulation_scheduled(cfg: &SimConfig, sched: &mut dyn Scheduler) -> RunResult {
    run_simulation_with(cfg, Some(sched))
}

fn run_simulation_with(cfg: &SimConfig, sched: Option<&mut dyn Scheduler>) -> RunResult {
    match cfg.protocol {
        ProtocolKind::ScalableBulk => {
            Machine::new(cfg.clone(), ScalableBulk::new(cfg.sb, cfg.cores)).run_with(sched)
        }
        ProtocolKind::Tcc => {
            Machine::new(cfg.clone(), Tcc::new(cfg.tcc, cfg.cores)).run_with(sched)
        }
        ProtocolKind::Seq => Machine::new(cfg.clone(), Seq::new(cfg.cores)).run_with(sched),
        ProtocolKind::SeqTs => Machine::new(cfg.clone(), SeqTs::new(cfg.cores)).run_with(sched),
        // BulkSc::new clamps an out-of-range arbiter placement itself.
        ProtocolKind::BulkSc => {
            Machine::new(cfg.clone(), BulkSc::new(cfg.bulksc, cfg.cores, cfg.cores)).run_with(sched)
        }
    }
}

/// Convenience: runs `app` on `cores` cores under `protocol` with
/// `insns_per_thread` committed instructions per thread.
pub fn run_app(
    app: AppProfile,
    cores: u16,
    protocol: ProtocolKind,
    insns_per_thread: u64,
) -> RunResult {
    let mut cfg = SimConfig::paper_default(cores, app, protocol);
    cfg.insns_per_thread = insns_per_thread;
    run_simulation(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(protocol: ProtocolKind) -> SimConfig {
        let mut cfg = SimConfig::paper_default(8, AppProfile::fft(), protocol);
        cfg.insns_per_thread = 8_000;
        cfg
    }

    #[test]
    fn all_four_protocols_complete_a_small_run() {
        for protocol in ProtocolKind::ALL {
            let r = run_simulation(&small_cfg(protocol));
            assert!(r.commits >= 8 * 3, "{protocol}: commits {}", r.commits);
            assert!(r.wall_cycles > 8_000, "{protocol}");
            assert!(r.breakdown.useful > 0, "{protocol}");
            assert!(r.latency.count() > 0, "{protocol}");
        }
    }

    #[test]
    fn runs_are_deterministic_under_every_protocol() {
        // Regression guard for the zero-copy/no-alloc event-loop work:
        // shared signature handles, reused command buffers, and Fx-hashed
        // internal maps must leave every protocol a pure function of its
        // config and seed.
        // Table 3's four protocols plus the SEQ-TS extension.
        for protocol in ProtocolKind::ALL.into_iter().chain([ProtocolKind::SeqTs]) {
            let cfg = small_cfg(protocol);
            let a = run_simulation(&cfg);
            let b = run_simulation(&cfg);
            assert_eq!(a.wall_cycles, b.wall_cycles, "{protocol}");
            assert_eq!(a.commits, b.commits, "{protocol}");
            assert_eq!(
                a.traffic.total_messages(),
                b.traffic.total_messages(),
                "{protocol}"
            );
        }
    }

    #[test]
    fn single_processor_run_completes() {
        let mut cfg = SimConfig::single_processor(AppProfile::fft(), 8, 4_000);
        cfg.seed = 3;
        let r = run_simulation(&cfg);
        assert!(r.commits >= 8, "one core does all threads' chunks");
        // No commit contention on one core: zero squashes.
        assert_eq!(r.squashes(), 0);
    }

    #[test]
    fn scalablebulk_avoids_commit_stall_on_shared_dirs() {
        // Blackscholes-like wide groups: SB should show less commit stall
        // than TCC on the same workload.
        let mut sb_cfg =
            SimConfig::paper_default(16, AppProfile::blackscholes(), ProtocolKind::ScalableBulk);
        sb_cfg.insns_per_thread = 12_000;
        let mut tcc_cfg = sb_cfg.clone();
        tcc_cfg.protocol = ProtocolKind::Tcc;
        let sb = run_simulation(&sb_cfg);
        let tcc = run_simulation(&tcc_cfg);
        assert!(
            sb.breakdown.commit <= tcc.breakdown.commit,
            "SB commit stall {} vs TCC {}",
            sb.breakdown.commit,
            tcc.breakdown.commit
        );
    }
}
