//! Observability primitives for the ScalableBulk simulator.
//!
//! The build environment is fully offline (no `serde`/`serde_json`), so
//! this crate provides the two things the observability layer needs from
//! scratch, with deterministic output suitable for golden-snapshot tests:
//!
//! * [`json`] — an ordered JSON value type with a canonical writer and a
//!   minimal parser, so exported traces can be round-tripped and diffed
//!   byte-for-byte.
//! * [`perfetto`] — a builder for the chrome-trace / Perfetto
//!   "traceEvents" JSON format (complete spans, instants, counters and
//!   track-name metadata), plus a structural validator.
//!
//! Nothing here knows about the simulator: `sb-sim` converts its
//! `RunTrace` + observability log into a [`perfetto::PerfettoTrace`], and
//! `sb-stats` dumps its metrics registry through [`json::JsonValue`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod perfetto;

/// FNV-1a fingerprint of a byte string — stable across Rust releases,
/// used to pin golden JSON snapshots (the same construction `sb-sim`
/// uses for `RunTrace::fingerprint`).
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
    }
}
