//! Builder and validator for the chrome-trace / Perfetto JSON format.
//!
//! The output is the classic "JSON Array Format" (`{"traceEvents":
//! [...]}`) that both `chrome://tracing` and [ui.perfetto.dev] load
//! directly. Four phases are used:
//!
//! * `"M"` — metadata naming processes (track groups) and threads
//!   (tracks);
//! * `"X"` — complete events: a span with `ts` + `dur`;
//! * `"i"` — instant events;
//! * `"C"` — counter samples.
//!
//! The builder keeps every track's events in non-decreasing-`ts` order
//! (a stable sort at export time), so the produced JSON is deterministic
//! for a deterministic input stream and satisfies the monotonicity
//! property `sb-check` verifies.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev
//!
//! # Examples
//!
//! ```
//! use sb_obs::perfetto::{validate, PerfettoTrace};
//!
//! let mut t = PerfettoTrace::new();
//! t.process_name(0, "cores");
//! t.thread_name(0, 0, "core 0");
//! t.complete(0, 0, "c0#1", "chunk", 10, 25, vec![]);
//! t.instant(0, 0, "inv", "inv", 20);
//! let json = t.to_json();
//! assert!(validate(&json).is_empty());
//! ```

use crate::json::JsonValue;

/// In-progress chrome-trace document.
#[derive(Debug, Default)]
pub struct PerfettoTrace {
    /// Metadata ("M") events, emitted ahead of all timed events.
    meta: Vec<JsonValue>,
    /// Timed events with their sort key (`ts`, insertion index).
    events: Vec<(u64, JsonValue)>,
}

fn base_event(
    ph: &str,
    pid: u64,
    tid: u64,
    name: &str,
    cat: &str,
    ts: u64,
) -> Vec<(String, JsonValue)> {
    vec![
        ("name".to_string(), JsonValue::from(name)),
        ("cat".to_string(), JsonValue::from(cat)),
        ("ph".to_string(), JsonValue::from(ph)),
        ("ts".to_string(), JsonValue::from(ts)),
        ("pid".to_string(), JsonValue::from(pid)),
        ("tid".to_string(), JsonValue::from(tid)),
    ]
}

impl PerfettoTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a process (a group of tracks in the Perfetto UI).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.meta.push(JsonValue::obj([
            ("name", JsonValue::from("process_name")),
            ("ph", JsonValue::from("M")),
            ("pid", JsonValue::from(pid)),
            ("tid", JsonValue::from(0u64)),
            ("args", JsonValue::obj([("name", JsonValue::from(name))])),
        ]));
    }

    /// Names a thread (one track).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.meta.push(JsonValue::obj([
            ("name", JsonValue::from("thread_name")),
            ("ph", JsonValue::from("M")),
            ("pid", JsonValue::from(pid)),
            ("tid", JsonValue::from(tid)),
            ("args", JsonValue::obj([("name", JsonValue::from(name))])),
        ]));
    }

    /// Adds a complete ("X") span of `dur` ticks starting at `ts`.
    // One parameter per chrome-trace field; a builder would obscure the
    // 1:1 mapping to the format.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts: u64,
        dur: u64,
        args: Vec<(String, JsonValue)>,
    ) {
        let mut members = base_event("X", pid, tid, name, cat, ts);
        members.push(("dur".to_string(), JsonValue::from(dur)));
        if !args.is_empty() {
            members.push(("args".to_string(), JsonValue::Object(args)));
        }
        self.events.push((ts, JsonValue::Object(members)));
    }

    /// Adds a thread-scoped instant ("i") event.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts: u64) {
        let mut members = base_event("i", pid, tid, name, cat, ts);
        members.push(("s".to_string(), JsonValue::from("t")));
        self.events.push((ts, JsonValue::Object(members)));
    }

    /// Adds a counter ("C") sample: the named series on track
    /// `(pid, tid)` takes `value` from `ts` on.
    pub fn counter(&mut self, pid: u64, tid: u64, name: &str, ts: u64, series: &str, value: u64) {
        let mut members = base_event("C", pid, tid, name, "counter", ts);
        members.push((
            "args".to_string(),
            JsonValue::obj([(series, JsonValue::from(value))]),
        ));
        self.events.push((ts, JsonValue::Object(members)));
    }

    /// Starts a flow ("s") with the given numeric id at `ts` on track
    /// `(pid, tid)`. The Perfetto UI draws an arrow from here to the
    /// matching [`PerfettoTrace::flow_end`] — tracks may differ (that is
    /// the point: flows link a send on one track to a delivery on
    /// another).
    pub fn flow_start(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts: u64, id: u64) {
        let mut members = base_event("s", pid, tid, name, cat, ts);
        members.push(("id".to_string(), JsonValue::from(id)));
        self.events.push((ts, JsonValue::Object(members)));
    }

    /// Ends a flow ("f") with the given numeric id at `ts` on track
    /// `(pid, tid)`. Uses `"bp":"e"` (bind to enclosing slice) per the
    /// chrome-trace format.
    pub fn flow_end(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts: u64, id: u64) {
        let mut members = base_event("f", pid, tid, name, cat, ts);
        members.push(("bp".to_string(), JsonValue::from("e")));
        members.push(("id".to_string(), JsonValue::from(id)));
        self.events.push((ts, JsonValue::Object(members)));
    }

    /// Number of timed (non-metadata) events added so far.
    pub fn timed_events(&self) -> usize {
        self.events.len()
    }

    /// Finishes the document: metadata first, then all timed events in
    /// stable non-decreasing `ts` order.
    pub fn to_json(mut self) -> JsonValue {
        self.events.sort_by_key(|(ts, _)| *ts);
        let all = self
            .meta
            .into_iter()
            .chain(self.events.into_iter().map(|(_, e)| e));
        JsonValue::obj([("traceEvents", JsonValue::Array(all.collect()))])
    }
}

/// Structural well-formedness check of a chrome-trace document.
///
/// Returns human-readable violations (empty = clean):
/// * the root must be an object with a `traceEvents` array;
/// * every event needs `ph`/`pid`/`tid`/`name`, with a known phase;
/// * timed events need a non-negative integer `ts` (and `dur` for
///   `"X"`);
/// * per `(pid, tid)` track, timestamps must be monotonically
///   non-decreasing in array order;
/// * flow events (`"s"`/`"f"`) need a numeric `id`, and every id must
///   bind exactly one start to exactly one end, with the end no earlier
///   than the start (the two may live on different tracks).
pub fn validate(trace: &JsonValue) -> Vec<String> {
    let mut violations = Vec::new();
    let Some(events) = trace.get("traceEvents").and_then(|e| e.as_array()) else {
        return vec!["root has no traceEvents array".to_string()];
    };
    let mut last_ts: Vec<((i64, i64), i64)> = Vec::new();
    // Per flow id: (start ts, end ts) as seen so far.
    let mut flows: std::collections::BTreeMap<i64, (Option<i64>, Option<i64>)> =
        std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let Some(ph) = ev.get("ph").and_then(|p| p.as_str()) else {
            violations.push(format!("event {i}: missing ph"));
            continue;
        };
        if !matches!(ph, "M" | "X" | "i" | "C" | "s" | "f") {
            violations.push(format!("event {i}: unknown phase {ph:?}"));
            continue;
        }
        let pid = ev.get("pid").and_then(|v| v.as_i64());
        let tid = ev.get("tid").and_then(|v| v.as_i64());
        if pid.is_none() || tid.is_none() {
            violations.push(format!("event {i}: missing pid/tid"));
            continue;
        }
        if ev.get("name").and_then(|n| n.as_str()).is_none() {
            violations.push(format!("event {i}: missing name"));
        }
        if ph == "M" {
            continue;
        }
        let Some(ts) = ev.get("ts").and_then(|v| v.as_i64()) else {
            violations.push(format!("event {i}: timed event missing ts"));
            continue;
        };
        if ts < 0 {
            violations.push(format!("event {i}: negative ts {ts}"));
        }
        if ph == "X" {
            match ev.get("dur").and_then(|v| v.as_i64()) {
                Some(d) if d >= 0 => {}
                Some(d) => violations.push(format!("event {i}: negative dur {d}")),
                None => violations.push(format!("event {i}: X event missing dur")),
            }
        }
        if ph == "s" || ph == "f" {
            match ev.get("id").and_then(|v| v.as_i64()) {
                None => violations.push(format!("event {i}: flow event missing id")),
                Some(id) => {
                    let entry = flows.entry(id).or_default();
                    let slot = if ph == "s" {
                        &mut entry.0
                    } else {
                        &mut entry.1
                    };
                    if slot.is_some() {
                        violations.push(format!(
                            "event {i}: duplicate flow {} for id {id}",
                            if ph == "s" { "start" } else { "end" }
                        ));
                    } else {
                        *slot = Some(ts);
                    }
                }
            }
        }
        let key = (pid.unwrap(), tid.unwrap());
        match last_ts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, last)) => {
                if ts < *last {
                    violations.push(format!(
                        "event {i}: ts {ts} goes backwards on track {key:?} (last {last})"
                    ));
                }
                *last = ts;
            }
            None => last_ts.push((key, ts)),
        }
    }
    for (id, (start, end)) in &flows {
        match (start, end) {
            (Some(s), Some(f)) => {
                if f < s {
                    violations.push(format!("flow id {id}: ends at {f} before its start {s}"));
                }
            }
            (Some(_), None) => violations.push(format!("flow id {id}: start without end")),
            (None, Some(_)) => violations.push(format!("flow id {id}: end without start")),
            (None, None) => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfettoTrace {
        let mut t = PerfettoTrace::new();
        t.process_name(0, "cores");
        t.process_name(1, "directories");
        t.thread_name(0, 0, "core 0");
        t.thread_name(1, 3, "dir 3");
        t.complete(
            0,
            0,
            "c0#1",
            "chunk",
            10,
            30,
            vec![("outcome".to_string(), JsonValue::from("commit"))],
        );
        t.instant(0, 0, "inv", "inv", 25);
        t.complete(1, 3, "grab c0#1", "grab", 15, 10, vec![]);
        t.counter(0, 0, "held_invs", 26, "depth", 2);
        t
    }

    #[test]
    fn builder_produces_valid_sorted_output() {
        let json = sample().to_json();
        assert!(validate(&json).is_empty(), "{:?}", validate(&json));
        let events = json.get("traceEvents").unwrap().as_array().unwrap();
        // Metadata first, then ts order: 10, 15, 25, 26.
        let ts: Vec<Option<i64>> = events
            .iter()
            .map(|e| e.get("ts").and_then(|v| v.as_i64()))
            .collect();
        assert_eq!(
            ts,
            vec![
                None,
                None,
                None,
                None,
                Some(10),
                Some(15),
                Some(25),
                Some(26)
            ]
        );
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let json = sample().to_json();
        let text = json.to_string();
        let reparsed = JsonValue::parse(&text).expect("parses");
        assert_eq!(reparsed, json);
        assert!(validate(&reparsed).is_empty());
    }

    #[test]
    fn validator_flags_structural_problems() {
        // Not an object.
        assert!(!validate(&JsonValue::Null).is_empty());
        // Unknown phase.
        let bad = JsonValue::obj([(
            "traceEvents",
            JsonValue::arr([JsonValue::obj([
                ("name", JsonValue::from("x")),
                ("ph", JsonValue::from("Q")),
                ("pid", JsonValue::from(0u64)),
                ("tid", JsonValue::from(0u64)),
            ])]),
        )]);
        assert_eq!(validate(&bad).len(), 1);
        // X without dur.
        let no_dur = JsonValue::obj([(
            "traceEvents",
            JsonValue::arr([JsonValue::obj([
                ("name", JsonValue::from("x")),
                ("ph", JsonValue::from("X")),
                ("ts", JsonValue::from(1u64)),
                ("pid", JsonValue::from(0u64)),
                ("tid", JsonValue::from(0u64)),
            ])]),
        )]);
        assert!(validate(&no_dur).iter().any(|v| v.contains("missing dur")));
    }

    #[test]
    fn unmatched_flow_ids_are_flagged() {
        let mut t = PerfettoTrace::new();
        t.complete(0, 0, "send", "chunk", 5, 10, vec![]);
        t.flow_start(0, 0, "grab", "flow", 10, 7);
        let doc = t.to_json();
        assert!(
            validate(&doc)
                .iter()
                .any(|v| v.contains("start without end")),
            "{:?}",
            validate(&doc)
        );
        let mut t = PerfettoTrace::new();
        t.flow_end(1, 3, "grab", "flow", 20, 9);
        let doc = t.to_json();
        assert!(validate(&doc)
            .iter()
            .any(|v| v.contains("end without start")));
    }

    #[test]
    fn duplicate_flow_binding_is_flagged() {
        let mut t = PerfettoTrace::new();
        t.flow_start(0, 0, "grab", "flow", 10, 7);
        t.flow_start(0, 1, "grab", "flow", 12, 7);
        t.flow_end(1, 3, "grab", "flow", 20, 7);
        let doc = t.to_json();
        assert!(
            validate(&doc)
                .iter()
                .any(|v| v.contains("duplicate flow start")),
            "{:?}",
            validate(&doc)
        );
        // An end arriving before its start (in time) is also rejected.
        let mut t = PerfettoTrace::new();
        t.flow_start(0, 0, "grab", "flow", 10, 8);
        t.flow_end(1, 3, "grab", "flow", 4, 8);
        let doc = t.to_json();
        assert!(validate(&doc)
            .iter()
            .any(|v| v.contains("before its start")));
    }

    #[test]
    fn cross_track_flows_are_legal() {
        // A send on the cores track delivered on the directories track:
        // the flow spans processes, which must validate cleanly.
        let mut t = PerfettoTrace::new();
        t.process_name(0, "cores");
        t.process_name(1, "directories");
        t.flow_start(0, 2, "commit request", "flow", 100, 1);
        t.flow_end(1, 5, "commit request", "flow", 109, 1);
        let doc = t.to_json();
        assert!(validate(&doc).is_empty(), "{:?}", validate(&doc));
    }

    #[test]
    fn flow_trace_round_trips_byte_identically() {
        let build = || {
            let mut t = sample();
            t.flow_start(0, 0, "grab", "flow", 12, 41);
            t.flow_end(1, 3, "grab", "flow", 15, 41);
            t.to_json()
        };
        let a = build().to_string();
        let b = build().to_string();
        assert_eq!(a, b, "flow export is not deterministic");
        let reparsed = JsonValue::parse(&a).expect("parses");
        assert_eq!(reparsed.to_string(), a, "parser round-trip changed bytes");
        assert!(validate(&reparsed).is_empty());
    }

    #[test]
    fn validator_catches_backwards_time_per_track() {
        let mut bad = PerfettoTrace::new();
        bad.instant(0, 0, "a", "t", 10);
        bad.instant(0, 0, "b", "t", 5);
        // to_json sorts, so build the unsorted document by hand.
        let events: Vec<JsonValue> = bad.events.into_iter().map(|(_, e)| e).collect();
        let doc = JsonValue::obj([("traceEvents", JsonValue::Array(events))]);
        assert!(validate(&doc).iter().any(|v| v.contains("goes backwards")));
        // Different tracks may interleave freely.
        let mut ok = PerfettoTrace::new();
        ok.instant(0, 0, "a", "t", 10);
        ok.instant(0, 1, "b", "t", 5);
        let events: Vec<JsonValue> = ok.events.into_iter().map(|(_, e)| e).collect();
        let doc = JsonValue::obj([("traceEvents", JsonValue::Array(events))]);
        assert!(validate(&doc).is_empty());
    }
}
