//! A small, deterministic JSON value type: ordered objects, a canonical
//! writer, and a minimal recursive-descent parser.
//!
//! The writer is canonical in the sense that the same [`JsonValue`]
//! always produces the same bytes (object members keep their insertion
//! order; floats use Rust's shortest round-trip `{:?}` form), which is
//! what lets golden tests pin an exported trace byte-for-byte. The
//! parser accepts standard JSON and is used to prove exports round-trip.
//!
//! # Examples
//!
//! ```
//! use sb_obs::json::JsonValue;
//!
//! let v = JsonValue::obj([
//!     ("name", JsonValue::from("grab")),
//!     ("ts", JsonValue::from(42i64)),
//! ]);
//! let text = v.to_string();
//! assert_eq!(text, r#"{"name":"grab","ts":42}"#);
//! assert_eq!(JsonValue::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// One JSON value. Objects preserve insertion order (no sorting, no
/// hashing) so output is reproducible and diffs stay readable.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part (written without `.`).
    Int(i64),
    /// A fractional number (written in Rust's `{:?}` shortest
    /// round-trip form, which always keeps a `.` or exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; members keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v as i64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(pairs: I) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr<I: IntoIterator<Item = JsonValue>>(items: I) -> Self {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Object member lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value (`Int` only — floats are kept distinct).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value of either number form.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => {
                use fmt::Write;
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => {
                use fmt::Write;
                if v.is_finite() {
                    // `{:?}` keeps a `.0` on whole floats, so the reader
                    // can distinguish them from `Int` on round trip.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty-printed form (two-space indent), equally deterministic —
    /// used for the human-facing metrics dump.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and the run breaks only at
                // ASCII delimiters, so this slice is valid UTF-8 too.
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // A lone surrogate cannot occur in our own
                            // output (only control characters are
                            // `\u`-escaped); map it to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        self.pos += 1; // past the 'u'
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let hex =
            std::str::from_utf8(hex).map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if fractional {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
        } else {
            text.parse::<i64>()
                .map(JsonValue::Int)
                .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_canonical_and_ordered() {
        let v = JsonValue::obj([
            ("b", JsonValue::from(1u64)),
            (
                "a",
                JsonValue::arr([JsonValue::Null, JsonValue::from(true)]),
            ),
            ("f", JsonValue::from(2.0)),
        ]);
        // Insertion order is preserved; whole floats keep their ".0".
        assert_eq!(v.to_string(), r#"{"b":1,"a":[null,true],"f":2.0}"#);
        assert_eq!(v.to_string(), v.clone().to_string());
    }

    #[test]
    fn round_trips_every_value_shape() {
        let v = JsonValue::obj([
            ("null", JsonValue::Null),
            ("bool", JsonValue::from(false)),
            ("int", JsonValue::from(-42i64)),
            ("big", JsonValue::from(u64::MAX / 2)),
            ("float", JsonValue::from(0.125)),
            ("whole_float", JsonValue::from(3.0)),
            ("str", JsonValue::from("a\"b\\c\nd\te\u{1}f")),
            ("unicode", JsonValue::from("grabé ∞")),
            (
                "nest",
                JsonValue::arr([JsonValue::obj([("k", JsonValue::from("v"))])]),
            ),
            ("empty_arr", JsonValue::arr([])),
            ("empty_obj", JsonValue::obj::<&str, _>([])),
        ]);
        let text = v.to_string();
        let parsed = JsonValue::parse(&text).expect("round trip");
        assert_eq!(parsed, v);
        // And a second encode is byte-identical (stability).
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn pretty_form_parses_back_to_the_same_value() {
        let v = JsonValue::obj([
            ("a", JsonValue::from(1u64)),
            (
                "b",
                JsonValue::arr([JsonValue::from("x"), JsonValue::from(2u64)]),
            ),
        ]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(JsonValue::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parser_accepts_standard_json_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\\/\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(25.0)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("A/")
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = JsonValue::parse(r#"{"x": {"y": [null, "z"]}, "n": 7}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(7));
        let y = v.get("x").unwrap().get("y").unwrap().as_array().unwrap();
        assert_eq!(y[1].as_str(), Some("z"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("n").unwrap().as_str(), None);
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_string(), "null");
    }
}
