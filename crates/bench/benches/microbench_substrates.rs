//! Microbenchmarks of the substrates: signature operations, cache
//! accesses, torus routing and workload generation — the inner loops the
//! simulator's throughput depends on.

use criterion::{criterion_group, criterion_main, Criterion};
use sb_engine::Cycle;
use sb_mem::{CacheConfig, LineAddr, SetAssocCache};
use sb_net::{MsgSize, Network, NetworkConfig, NodeId, TrafficClass};
use sb_sigs::{Signature, SignatureConfig};
use sb_workloads::{AppProfile, WorkloadGen};
use std::hint::black_box;

fn signatures(c: &mut Criterion) {
    let cfg = SignatureConfig::paper_default();
    c.bench_function("signature_insert_64_lines", |b| {
        b.iter(|| {
            let mut s = Signature::new(cfg);
            for i in 0..64u64 {
                s.insert(black_box(i * 37));
            }
            s
        })
    });
    let a = Signature::from_lines(cfg, (0..64).map(|i| i * 37));
    let d = Signature::from_lines(cfg, (0..64).map(|i| 1_000_000 + i * 41));
    c.bench_function("signature_intersects", |b| {
        b.iter(|| black_box(&a).intersects(black_box(&d)))
    });
    c.bench_function("signature_test_membership", |b| {
        b.iter(|| black_box(&a).test(black_box(999)))
    });
}

fn caches(c: &mut Criterion) {
    c.bench_function("l2_access_hit", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::paper_l2());
        for i in 0..4096u64 {
            cache.fill(LineAddr(i), false);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            cache.access(LineAddr(i), false)
        })
    });
}

fn torus(c: &mut Criterion) {
    c.bench_function("torus_send_64", |b| {
        let mut net = Network::new(NetworkConfig::paper_default(64));
        let mut i = 0u16;
        b.iter(|| {
            i = (i + 1) % 64;
            net.send(
                Cycle(i as u64),
                NodeId(i),
                NodeId(63 - i),
                MsgSize::Small,
                TrafficClass::SmallCMessage,
            )
        })
    });
}

fn workload(c: &mut Criterion) {
    c.bench_function("workload_next_chunk_barnes", |b| {
        let mut g = WorkloadGen::new(AppProfile::barnes(), 64, 1);
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 1) % 64;
            g.next_chunk(t)
        })
    });
}

criterion_group!(benches, signatures, caches, torus, workload);
criterion_main!(benches);
