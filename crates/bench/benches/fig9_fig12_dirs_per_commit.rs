//! Figures 9–12 (directories per chunk commit) at bench scale: prints
//! the write-group / read-group averages and the 0..=14/more distribution
//! per application, and times the ScalableBulk run that produces them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_bench::{bench_config, bench_run};
use sb_proto::ProtocolKind;
use sb_sim::run_simulation;
use sb_workloads::AppProfile;

fn fig9_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fig12_dirs_per_commit");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    // All 18 applications: the metric is the point of these figures.
    for app in AppProfile::all() {
        let r = bench_run(app, 64, ProtocolKind::ScalableBulk);
        let dist: Vec<String> = (0..=15)
            .map(|k| format!("{:.0}", r.dirs.percent(k)))
            .collect();
        println!(
            "[fig9-12] {:14} write_group={:>5.2} read_group={:>5.2} dist%={}",
            app.name,
            r.dirs.mean_write_group(),
            r.dirs.mean_read_group(),
            dist.join("/"),
        );
    }
    // Time two representative runs.
    for app in [AppProfile::radix(), AppProfile::fft()] {
        let cfg = bench_config(app, 64, ProtocolKind::ScalableBulk);
        group.bench_with_input(
            BenchmarkId::new("scalablebulk", app.name),
            &cfg,
            |b, cfg| b.iter(|| run_simulation(cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, fig9_fig12);
criterion_main!(benches);
