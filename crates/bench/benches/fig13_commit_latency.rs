//! Figure 13 (commit-latency distribution) at bench scale: prints the
//! per-protocol latency summary at 32 and 64 cores (the paper's 64-core
//! means are SB 91 / TCC 411 / SEQ 153 / BulkSC 2954 cycles) and times
//! the runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_bench::{bench_apps, bench_config, bench_run};
use sb_proto::ProtocolKind;
use sb_sim::run_simulation;

fn fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_commit_latency");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    for cores in [32u16, 64] {
        for proto in ProtocolKind::ALL {
            let mut agg = sb_stats::LatencyDist::new();
            for app in bench_apps() {
                agg.merge(&bench_run(app, cores, proto).latency);
            }
            println!(
                "[fig13] cores={cores:2} {:12} mean={:>7.0} p50={:>6} p90={:>7} max={:>7}",
                proto.label(),
                agg.mean(),
                agg.quantile(0.5),
                agg.quantile(0.9),
                agg.max(),
            );
        }
    }
    for proto in [ProtocolKind::ScalableBulk, ProtocolKind::BulkSc] {
        let cfg = bench_config(sb_workloads::AppProfile::fft(), 64, proto);
        group.bench_with_input(BenchmarkId::new("fft64", proto.label()), &cfg, |b, cfg| {
            b.iter(|| run_simulation(cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, fig13);
criterion_main!(benches);
