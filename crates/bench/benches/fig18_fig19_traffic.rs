//! Figures 18–19 (message characterization) at bench scale: prints the
//! per-class message mix normalized to TCC and times the traffic-heavy
//! configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_bench::{bench_apps, bench_config, bench_run};
use sb_net::TrafficClass;
use sb_proto::ProtocolKind;
use sb_sim::run_simulation;
use sb_stats::TrafficReport;
use sb_workloads::AppProfile;

fn fig18_fig19(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_fig19_traffic");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    for app in bench_apps() {
        let tcc = bench_run(app, 64, ProtocolKind::Tcc);
        for proto in ProtocolKind::ALL {
            let r = bench_run(app, 64, proto);
            let rep = TrafficReport::normalized(&r.traffic, &tcc.traffic);
            println!(
                "[fig18/19] {:14} {} total={:>6.1}% MemRd={:>5.1} ShRd={:>5.1} DirtyRd={:>5.1} LargeC={:>5.1} SmallC={:>5.1}",
                app.name,
                proto.letter(),
                rep.total_percent(),
                rep.percent(TrafficClass::MemRd),
                rep.percent(TrafficClass::RemoteShRd),
                rep.percent(TrafficClass::RemoteDirtyRd),
                rep.percent(TrafficClass::LargeCMessage),
                rep.percent(TrafficClass::SmallCMessage),
            );
        }
    }
    let cfg = bench_config(AppProfile::canneal(), 64, ProtocolKind::Tcc);
    group.bench_with_input(BenchmarkId::new("canneal64", "TCC"), &cfg, |b, cfg| {
        b.iter(|| run_simulation(cfg))
    });
    group.finish();
}

criterion_group!(benches, fig18_fig19);
criterion_main!(benches);
