//! Figures 14–17 (bottleneck ratio and chunk queue length) at bench
//! scale: prints both serialization metrics per application and protocol
//! and times the most contended configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_bench::{bench_apps, bench_config, bench_run};
use sb_proto::ProtocolKind;
use sb_sim::run_simulation;
use sb_workloads::AppProfile;

fn fig14_fig17(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_fig17_serialization");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    let protos = [
        ProtocolKind::ScalableBulk,
        ProtocolKind::Tcc,
        ProtocolKind::Seq,
    ];
    for app in bench_apps() {
        for proto in protos {
            let r = bench_run(app, 64, proto);
            println!(
                "[fig14-17] {:14} {:12} bottleneck_ratio={:>6.2} queue_len={:>6.2}",
                app.name,
                proto.label(),
                r.gauges.bottleneck_ratio(),
                r.gauges.mean_queue_length(),
            );
        }
    }
    for proto in protos {
        let cfg = bench_config(AppProfile::radix(), 64, proto);
        group.bench_with_input(
            BenchmarkId::new("radix64", proto.label()),
            &cfg,
            |b, cfg| b.iter(|| run_simulation(cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, fig14_fig17);
criterion_main!(benches);
