//! Whole-run simulator throughput and commit-hot-path microbenches.
//!
//! Unlike the `fig*` benches, which regenerate the paper's *simulated*
//! results, this bench measures the *simulator itself*: end-to-end runs
//! of the fig-7 configuration at several core counts, plus the signature
//! operations on the commit hot path (handle sharing vs. deep cloning).
//!
//! Run with `cargo bench --bench throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_proto::ProtocolKind;
use sb_sigs::{SigHandle, Signature, SignatureConfig};
use sb_sim::{run_simulation, SimConfig};
use sb_workloads::AppProfile;
use std::hint::black_box;

/// The fig-7 sweep point used throughout: FFT under ScalableBulk, small
/// enough that one sample finishes in well under a second.
fn cfg(cores: u16) -> SimConfig {
    let mut cfg = SimConfig::paper_default(cores, AppProfile::fft(), ProtocolKind::ScalableBulk);
    cfg.insns_per_thread = 10_000;
    cfg
}

fn whole_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_whole_run");
    g.sample_size(10);
    for cores in [8u16, 32, 64] {
        g.bench_with_input(BenchmarkId::new("fft_sb", cores), &cores, |b, &cores| {
            let cfg = cfg(cores);
            b.iter(|| run_simulation(black_box(&cfg)))
        });
    }
    g.finish();
}

fn protocols_32(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_protocols_32c");
    g.sample_size(10);
    for proto in ProtocolKind::ALL {
        g.bench_with_input(
            BenchmarkId::new("fft", format!("{proto}")),
            &proto,
            |b, &proto| {
                let mut cfg = cfg(32);
                cfg.protocol = proto;
                b.iter(|| run_simulation(black_box(&cfg)))
            },
        );
    }
    g.finish();
}

fn signature_hot_path(c: &mut Criterion) {
    let sig_cfg = SignatureConfig::paper_default();
    let sig = Signature::from_lines(sig_cfg, (0..64).map(|i| i * 37));
    let handle = SigHandle::from(sig.clone());

    // The old commit fan-out: one deep copy of the W signature per
    // bulk-invalidation target.
    c.bench_function("wsig_deep_clone", |b| b.iter(|| black_box(&sig).clone()));
    // The new fan-out: one refcount bump per target.
    c.bench_function("wsig_handle_share", |b| {
        b.iter(|| black_box(&handle).share())
    });

    // Copy-on-write: mutating a shared handle pays one copy, mutating an
    // unshared one is free — the chunk-execution insert path.
    c.bench_function("sighandle_unshared_insert", |b| {
        let mut h = SigHandle::empty(sig_cfg);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(97);
            h.make_mut().insert(i);
        })
    });

    c.bench_function("sig_intersects_via_handle", |b| {
        let other = SigHandle::from(Signature::from_lines(
            sig_cfg,
            (0..64).map(|i| 1_000_000 + i * 41),
        ));
        b.iter(|| black_box(&handle).intersects(black_box(&other)))
    });
}

criterion_group!(benches, whole_run, protocols_32, signature_hot_path);
criterion_main!(benches);
