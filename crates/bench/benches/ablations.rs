//! Ablation benches for the design choices DESIGN.md calls out:
//! Optimistic Commit Initiation on/off, signature size, starvation
//! reservation threshold, and priority rotation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_bench::{bench_config, BENCH_INSNS};
use sb_proto::ProtocolKind;
use sb_sim::{run_simulation, SimConfig};
use sb_workloads::AppProfile;

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));

    // OCI on/off (§3.3): conservative initiation must cost latency.
    for oci in [true, false] {
        let mut cfg = bench_config(AppProfile::barnes(), 64, ProtocolKind::ScalableBulk);
        cfg.oci = oci;
        let r = run_simulation(&cfg);
        println!(
            "[ablation oci={oci}] wall={} latency={:.0} commit%={:.1}",
            r.wall_cycles,
            r.latency.mean(),
            r.breakdown.fraction_commit() * 100.0
        );
        group.bench_with_input(BenchmarkId::new("oci", oci), &cfg, |b, cfg| {
            b.iter(|| run_simulation(cfg))
        });
    }

    // Signature size sweep: alias squashes vs Table 2's 2 Kbit.
    for bits in [512u32, 2048, 4096] {
        let mut cfg = bench_config(AppProfile::barnes(), 64, ProtocolKind::ScalableBulk);
        cfg.sig = sb_sigs::SignatureConfig::new(bits, 4);
        let r = run_simulation(&cfg);
        println!(
            "[ablation sig={bits}b] squash={:.2}% (alias {}) wall={}",
            r.squash_rate() * 100.0,
            r.squashes_alias,
            r.wall_cycles
        );
    }

    // Starvation reservation threshold (§3.2.2 MAX).
    for max in [4u32, 16, 10_000] {
        let mut cfg: SimConfig = bench_config(AppProfile::radix(), 64, ProtocolKind::ScalableBulk);
        cfg.insns_per_thread = BENCH_INSNS;
        cfg.sb.max_squashes_before_reservation = max;
        let r = run_simulation(&cfg);
        println!(
            "[ablation MAX={max}] wall={} retries={} latency={:.0}",
            r.wall_cycles,
            r.commit_retries,
            r.latency.mean()
        );
    }

    // Priority rotation (§3.2.2 fairness).
    for rotation in [None, Some(10_000u64)] {
        let mut cfg = bench_config(AppProfile::radix(), 64, ProtocolKind::ScalableBulk);
        cfg.sb.rotation_interval = rotation;
        let r = run_simulation(&cfg);
        println!(
            "[ablation rotation={rotation:?}] wall={} retries={}",
            r.wall_cycles, r.commit_retries
        );
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
