//! Figures 7–8 (execution time / speedup) at bench scale: times one
//! simulated run per (app × protocol) at 64 cores and prints the
//! breakdown rows the paper charts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_bench::{bench_apps, bench_config, bench_run};
use sb_proto::ProtocolKind;
use sb_sim::run_simulation;

fn fig7_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_fig8_exec_time");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    for app in bench_apps() {
        for proto in ProtocolKind::ALL {
            // Print the figure row once, outside the timed loop.
            let r = bench_run(app, 64, proto);
            println!(
                "[fig7/8] {:14} {:12} wall={:>8} useful={:>5.1}% cache={:>5.1}% commit={:>5.1}% squash={:>5.2}%",
                app.name,
                proto.label(),
                r.wall_cycles,
                r.breakdown.fraction_useful() * 100.0,
                r.breakdown.fraction_cache_miss() * 100.0,
                r.breakdown.fraction_commit() * 100.0,
                r.breakdown.fraction_squash() * 100.0,
            );
            let cfg = bench_config(app, 64, proto);
            group.bench_with_input(BenchmarkId::new(app.name, proto.label()), &cfg, |b, cfg| {
                b.iter(|| run_simulation(cfg))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig7_fig8);
criterion_main!(benches);
