//! Shared helpers for the Criterion benchmark harness.
//!
//! Each bench target regenerates one family of the paper's tables/figures
//! at a reduced scale (fewer committed instructions than the `figures`
//! binary) so `cargo bench` finishes in minutes, and prints the same rows
//! the paper reports alongside Criterion's timing of the simulation
//! itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sb_proto::ProtocolKind;
use sb_sim::{run_simulation, RunResult, SimConfig};
use sb_workloads::AppProfile;

/// Instructions per thread used by the bench-scale experiments.
pub const BENCH_INSNS: u64 = 8_000;

/// Builds the bench-scale configuration for one run.
pub fn bench_config(app: AppProfile, cores: u16, proto: ProtocolKind) -> SimConfig {
    let mut cfg = SimConfig::paper_default(cores, app, proto);
    cfg.insns_per_thread = BENCH_INSNS;
    cfg.seed = 0xbe9c;
    cfg
}

/// Runs one bench-scale simulation.
pub fn bench_run(app: AppProfile, cores: u16, proto: ProtocolKind) -> RunResult {
    run_simulation(&bench_config(app, cores, proto))
}

/// The reduced application set used by the per-figure benches: the
/// stress case (Radix), a read-wide case (Canneal) and a well-behaved
/// case (FFT).
pub fn bench_apps() -> Vec<AppProfile> {
    vec![
        AppProfile::radix(),
        AppProfile::canneal(),
        AppProfile::fft(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_helpers_produce_runs() {
        let r = bench_run(AppProfile::fft(), 8, ProtocolKind::ScalableBulk);
        assert!(r.commits > 0);
        assert_eq!(bench_apps().len(), 3);
        assert_eq!(
            bench_config(AppProfile::fft(), 8, ProtocolKind::Tcc).insns_per_thread,
            BENCH_INSNS
        );
    }
}
