//! Chunk tags.

use std::fmt;

use sb_mem::CoreId;

/// The unique tag of a chunk (`C_Tag` in Table 1): the originating
/// processor ID concatenated with a processor-local sequence number.
///
/// Tags order chunks from the same processor (`seq` is monotonic), which the
/// window uses for in-order commit and squash-younger semantics.
///
/// # Examples
///
/// ```
/// use sb_chunks::ChunkTag;
/// use sb_mem::CoreId;
///
/// let t = ChunkTag::new(CoreId(3), 17);
/// assert_eq!(t.core(), CoreId(3));
/// assert_eq!(t.seq(), 17);
/// assert!(t < ChunkTag::new(CoreId(3), 18));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkTag {
    core: CoreId,
    seq: u64,
}

impl ChunkTag {
    /// Creates a tag.
    pub fn new(core: CoreId, seq: u64) -> Self {
        ChunkTag { core, seq }
    }

    /// The originating processor.
    pub fn core(self) -> CoreId {
        self.core
    }

    /// The processor-local sequence number.
    pub fn seq(self) -> u64 {
        self.seq
    }

    /// The tag of the same processor's next chunk.
    pub fn next(self) -> ChunkTag {
        ChunkTag {
            core: self.core,
            seq: self.seq + 1,
        }
    }

    /// Whether `self` is an older chunk than `other` from the same core.
    pub fn is_older_than(self, other: ChunkTag) -> bool {
        self.core == other.core && self.seq < other.seq
    }
}

impl fmt::Display for ChunkTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.core, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_within_core() {
        let a = ChunkTag::new(CoreId(1), 5);
        assert!(a.is_older_than(a.next()));
        assert!(!a.next().is_older_than(a));
        assert!(!a.is_older_than(a));
    }

    #[test]
    fn different_cores_never_ordered() {
        let a = ChunkTag::new(CoreId(1), 5);
        let b = ChunkTag::new(CoreId(2), 9);
        assert!(!a.is_older_than(b));
        assert!(!b.is_older_than(a));
    }

    #[test]
    fn display_and_accessors() {
        let t = ChunkTag::new(CoreId(7), 42);
        assert_eq!(t.to_string(), "P7#42");
        assert_eq!(t.core(), CoreId(7));
        assert_eq!(t.seq(), 42);
        assert_eq!(t.next().seq(), 43);
    }
}
