//! Runtime chunk state accumulated by an executing core.

use std::collections::BTreeSet;

use sb_mem::{DirId, DirSet, LineAddr};
use sb_sigs::{SigHandle, Signature, SignatureConfig};

use crate::tag::ChunkTag;

/// The state a core builds up while executing one chunk: exact read/write
/// sets (the cache's speculative state), the R and W signatures, and the
/// set of home directory modules touched (`g_vec`), split by whether the
/// directory saw a write or only reads — the paper's Figures 9–10 chart
/// exactly this split ("Write Group" vs "Read Group").
///
/// # Examples
///
/// ```
/// use sb_chunks::{ActiveChunk, ChunkTag};
/// use sb_mem::{CoreId, DirId, LineAddr};
/// use sb_sigs::SignatureConfig;
///
/// let mut c = ActiveChunk::new(ChunkTag::new(CoreId(0), 0), SignatureConfig::paper_default());
/// c.record_read(LineAddr(1), DirId(2));
/// c.record_write(LineAddr(9), DirId(5));
/// let req = c.to_commit_request();
/// assert_eq!(req.g_vec.len(), 2);
/// assert_eq!(req.write_dirs.len(), 1);
/// assert!(req.wsig.test(9));
/// ```
#[derive(Clone, Debug)]
pub struct ActiveChunk {
    tag: ChunkTag,
    /// Built in place while the chunk runs (the handle is unshared, so
    /// `make_mut` mutates without copying); sealed into the commit
    /// request by an O(1) `share`.
    rsig: SigHandle,
    wsig: SigHandle,
    rset: BTreeSet<LineAddr>,
    wset: BTreeSet<LineAddr>,
    read_dirs: DirSet,
    write_dirs: DirSet,
    write_lines_per_dir: std::collections::BTreeMap<DirId, u32>,
    instructions_done: u64,
}

impl ActiveChunk {
    /// Creates an empty chunk with the given tag.
    pub fn new(tag: ChunkTag, sig_cfg: SignatureConfig) -> Self {
        ActiveChunk {
            tag,
            rsig: SigHandle::empty(sig_cfg),
            wsig: SigHandle::empty(sig_cfg),
            rset: BTreeSet::new(),
            wset: BTreeSet::new(),
            read_dirs: DirSet::empty(),
            write_dirs: DirSet::empty(),
            write_lines_per_dir: std::collections::BTreeMap::new(),
            instructions_done: 0,
        }
    }

    /// The chunk's tag.
    pub fn tag(&self) -> ChunkTag {
        self.tag
    }

    /// Records a load of `line` whose home is `home`.
    pub fn record_read(&mut self, line: LineAddr, home: DirId) {
        self.rsig.make_mut().insert(line.as_u64());
        self.rset.insert(line);
        self.read_dirs.insert(home);
    }

    /// Records a store to `line` whose home is `home`.
    pub fn record_write(&mut self, line: LineAddr, home: DirId) {
        self.wsig.make_mut().insert(line.as_u64());
        if self.wset.insert(line) {
            *self.write_lines_per_dir.entry(home).or_insert(0) += 1;
        }
        self.write_dirs.insert(home);
    }

    /// Advances the retired-instruction count.
    pub fn retire_instructions(&mut self, n: u64) {
        self.instructions_done += n;
    }

    /// Dynamic instructions retired so far.
    pub fn instructions_done(&self) -> u64 {
        self.instructions_done
    }

    /// The read signature.
    pub fn rsig(&self) -> &Signature {
        self.rsig.as_signature()
    }

    /// The write signature.
    pub fn wsig(&self) -> &Signature {
        self.wsig.as_signature()
    }

    /// Exact read set (for tests and exact-conflict diagnostics).
    pub fn read_set(&self) -> &BTreeSet<LineAddr> {
        &self.rset
    }

    /// Exact write set.
    pub fn write_set(&self) -> &BTreeSet<LineAddr> {
        &self.wset
    }

    /// Directories that recorded at least one write.
    pub fn write_dirs(&self) -> DirSet {
        self.write_dirs.clone()
    }

    /// Directories that recorded only reads.
    pub fn read_only_dirs(&self) -> DirSet {
        self.read_dirs.difference(&self.write_dirs)
    }

    /// All directories in the chunk's read- and write-sets (`g_vec`).
    pub fn g_vec(&self) -> DirSet {
        self.read_dirs.union(&self.write_dirs)
    }

    /// Whether an incoming committed write signature collides with this
    /// chunk (bulk disambiguation): true iff `other_w ∩ (R ∪ W)` is
    /// non-null under the conservative signature test.
    pub fn conflicts_with_writer(&self, other_w: &Signature) -> bool {
        other_w.intersects(&self.rsig) || other_w.intersects(&self.wsig)
    }

    /// Seals the chunk into the commit-request payload sent to the
    /// directories. O(1) in the signature size: the request shares the
    /// chunk's signature storage (a later in-place edit of the chunk
    /// would copy-on-write, leaving the request unaffected).
    pub fn to_commit_request(&self) -> CommitRequest {
        CommitRequest {
            tag: self.tag,
            rsig: self.rsig.share(),
            wsig: self.wsig.share(),
            g_vec: self.g_vec(),
            write_dirs: self.write_dirs.clone(),
            read_lines: self.rset.len() as u32,
            write_lines: self.wset.len() as u32,
            write_lines_per_dir: self
                .write_lines_per_dir
                .iter()
                .map(|(d, n)| (*d, *n))
                .collect(),
        }
    }

    /// Home directory of `line` *as recorded in this chunk* — only for
    /// tests; the authoritative mapping lives in the page mapper.
    pub fn touched_dirs_count(&self) -> u32 {
        self.g_vec().len()
    }
}

/// The payload of a `commit request` message (Table 1): chunk tag, both
/// signatures, and the directory vector. Counts of exact lines ride along
/// for statistics only.
///
/// The signatures are [`SigHandle`]s, so `Clone` is cheap (two refcount
/// bumps plus a few words) — the protocol clones this payload once per
/// grabbed directory and per retry.
#[derive(Clone, Debug)]
pub struct CommitRequest {
    /// Chunk tag (`C_Tag`).
    pub tag: ChunkTag,
    /// Read signature (`R_Sig`), shared — see [`SigHandle`].
    pub rsig: SigHandle,
    /// Write signature (`W_Sig`), shared — see [`SigHandle`].
    pub wsig: SigHandle,
    /// Directory modules in the chunk's read- and write-sets (`g_vec`).
    pub g_vec: DirSet,
    /// The subset of `g_vec` that recorded at least one write.
    pub write_dirs: DirSet,
    /// Exact distinct lines read (statistics only).
    pub read_lines: u32,
    /// Exact distinct lines written (statistics only).
    pub write_lines: u32,
    /// Distinct written lines per home directory, ascending by directory —
    /// Scalable TCC sends one `mark` message per written line to the
    /// line's home directory, so its model needs these counts.
    pub write_lines_per_dir: Vec<(DirId, u32)>,
}

impl CommitRequest {
    /// Directories that recorded only reads.
    pub fn read_only_dirs(&self) -> DirSet {
        self.g_vec.difference(&self.write_dirs)
    }

    /// The group leader under the baseline policy: the lowest-numbered
    /// participating module (§3.2).
    pub fn leader(&self) -> Option<DirId> {
        self.g_vec.lowest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_mem::CoreId;

    fn chunk() -> ActiveChunk {
        ActiveChunk::new(
            ChunkTag::new(CoreId(1), 0),
            SignatureConfig::paper_default(),
        )
    }

    #[test]
    fn records_sets_and_dirs() {
        let mut c = chunk();
        c.record_read(LineAddr(10), DirId(0));
        c.record_read(LineAddr(11), DirId(3));
        c.record_write(LineAddr(20), DirId(3));
        assert_eq!(c.read_set().len(), 2);
        assert_eq!(c.write_set().len(), 1);
        assert_eq!(c.g_vec().len(), 2);
        assert_eq!(c.write_dirs().iter().collect::<Vec<_>>(), vec![DirId(3)]);
        assert_eq!(
            c.read_only_dirs().iter().collect::<Vec<_>>(),
            vec![DirId(0)]
        );
        assert!(c.rsig().test(10));
        assert!(c.wsig().test(20));
        assert!(!c.wsig().test(10));
    }

    #[test]
    fn dir_that_sees_read_and_write_is_write_group() {
        let mut c = chunk();
        c.record_read(LineAddr(1), DirId(2));
        c.record_write(LineAddr(2), DirId(2));
        assert!(c.write_dirs().contains(DirId(2)));
        assert!(c.read_only_dirs().is_empty());
        assert_eq!(c.touched_dirs_count(), 1);
    }

    #[test]
    fn conflict_detection_via_signatures() {
        let mut c = chunk();
        c.record_read(LineAddr(100), DirId(0));
        let w_hit = Signature::from_lines(SignatureConfig::paper_default(), [100u64]);
        let w_miss = Signature::from_lines(SignatureConfig::paper_default(), [555_555u64]);
        assert!(c.conflicts_with_writer(&w_hit));
        assert!(!c.conflicts_with_writer(&w_miss));
        // Write-write conflicts too.
        c.record_write(LineAddr(200), DirId(0));
        let ww = Signature::from_lines(SignatureConfig::paper_default(), [200u64]);
        assert!(c.conflicts_with_writer(&ww));
    }

    #[test]
    fn commit_request_snapshot() {
        let mut c = chunk();
        c.record_read(LineAddr(1), DirId(1));
        c.record_write(LineAddr(2), DirId(4));
        c.record_write(LineAddr(3), DirId(6));
        c.retire_instructions(2000);
        let req = c.to_commit_request();
        assert_eq!(req.tag, c.tag());
        assert_eq!(req.read_lines, 1);
        assert_eq!(req.write_lines, 2);
        assert_eq!(req.leader(), Some(DirId(1)));
        assert_eq!(
            req.read_only_dirs().iter().collect::<Vec<_>>(),
            vec![DirId(1)]
        );
        assert_eq!(c.instructions_done(), 2000);
    }

    #[test]
    fn empty_chunk_has_no_leader() {
        let req = chunk().to_commit_request();
        assert_eq!(req.leader(), None);
        assert!(req.g_vec.is_empty());
    }
}
