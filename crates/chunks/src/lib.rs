//! The chunk (atomic block) model.
//!
//! In a continuous atomic-block architecture a processor repeatedly executes
//! *chunks* — groups of ~2000 consecutive dynamic instructions — each of
//! which must appear to execute atomically. While a chunk runs, the hardware
//! accumulates its read and write sets into address signatures and collects
//! the home directory modules of the lines it touches (the `g_vec` of
//! Table 1). At the end of the chunk, the processor asks the commit protocol
//! to make the chunk's writes visible atomically.
//!
//! This crate provides:
//!
//! * [`ChunkTag`] — the `C_Tag` of the paper: originating processor ID
//!   concatenated with a processor-local sequence number,
//! * [`MemAccess`]/[`ChunkSpec`] — a generated chunk as produced by the
//!   workload models (instruction count plus an ordered access list),
//! * [`ActiveChunk`] — the runtime state a core accumulates while executing
//!   a chunk (sets, signatures, directory vector), sealed into a
//!   [`CommitRequest`] at commit time, and
//! * [`ChunkWindow`] — the per-core window of in-flight chunks (Table 2:
//!   max two active chunks per core) with in-order commit and
//!   squash-younger semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod active;
mod tag;
mod window;

pub use access::{ChunkSpec, MemAccess};
pub use active::{ActiveChunk, CommitRequest};
pub use tag::ChunkTag;
pub use window::{ChunkPhase, ChunkWindow, WindowSlot};
