//! The per-core window of in-flight chunks.

use sb_sigs::Signature;

use crate::active::ActiveChunk;
use crate::tag::ChunkTag;

/// Lifecycle phase of an in-flight chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkPhase {
    /// Still executing instructions.
    Executing,
    /// Finished executing; commit request issued (or about to be), waiting
    /// for commit success/failure.
    CommitPending,
}

/// One slot of the window.
#[derive(Debug)]
pub struct WindowSlot {
    /// The chunk state.
    pub chunk: ActiveChunk,
    /// Its phase.
    pub phase: ChunkPhase,
}

/// The window of in-flight chunks on one core.
///
/// Table 2 allows two active chunks per core: while the older chunk's
/// commit is in flight, the core keeps executing the younger one. Chunks
/// from one core commit strictly in order, and squashing a chunk also
/// squashes every younger chunk from the same core (younger chunks may have
/// consumed the squashed chunk's speculative data).
///
/// # Examples
///
/// ```
/// use sb_chunks::{ChunkWindow, ChunkPhase};
/// use sb_mem::CoreId;
/// use sb_sigs::SignatureConfig;
///
/// let mut w = ChunkWindow::new(CoreId(0), 2, SignatureConfig::paper_default());
/// let t0 = w.start_chunk().unwrap();
/// w.mark_commit_pending(t0);
/// let t1 = w.start_chunk().unwrap();   // second slot
/// assert!(w.start_chunk().is_none());  // window full
/// assert_eq!(w.retire_oldest(), t0);
/// assert_eq!(w.oldest().unwrap().chunk.tag(), t1);
/// ```
#[derive(Debug)]
pub struct ChunkWindow {
    core: sb_mem::CoreId,
    max_active: usize,
    sig_cfg: sb_sigs::SignatureConfig,
    slots: Vec<WindowSlot>,
    next_seq: u64,
    squashes: u64,
}

impl ChunkWindow {
    /// Creates an empty window allowing `max_active` chunks in flight.
    ///
    /// # Panics
    ///
    /// Panics if `max_active` is zero.
    pub fn new(core: sb_mem::CoreId, max_active: usize, sig_cfg: sb_sigs::SignatureConfig) -> Self {
        assert!(max_active >= 1, "window needs at least one slot");
        ChunkWindow {
            core,
            max_active,
            sig_cfg,
            slots: Vec::with_capacity(max_active),
            next_seq: 0,
            squashes: 0,
        }
    }

    /// Opens a new chunk if a slot is free; returns its tag.
    pub fn start_chunk(&mut self) -> Option<ChunkTag> {
        if self.slots.len() >= self.max_active {
            return None;
        }
        let tag = ChunkTag::new(self.core, self.next_seq);
        self.next_seq += 1;
        self.slots.push(WindowSlot {
            chunk: ActiveChunk::new(tag, self.sig_cfg),
            phase: ChunkPhase::Executing,
        });
        Some(tag)
    }

    /// Whether a new chunk can start.
    pub fn has_free_slot(&self) -> bool {
        self.slots.len() < self.max_active
    }

    /// The youngest in-flight chunk (the one currently executing), if any.
    pub fn youngest_mut(&mut self) -> Option<&mut WindowSlot> {
        self.slots.last_mut()
    }

    /// The oldest in-flight chunk, if any.
    pub fn oldest(&self) -> Option<&WindowSlot> {
        self.slots.first()
    }

    /// Mutable access to the oldest in-flight chunk.
    pub fn oldest_mut(&mut self) -> Option<&mut WindowSlot> {
        self.slots.first_mut()
    }

    /// Looks up a slot by tag.
    pub fn get(&self, tag: ChunkTag) -> Option<&WindowSlot> {
        self.slots.iter().find(|s| s.chunk.tag() == tag)
    }

    /// Mutable lookup by tag.
    pub fn get_mut(&mut self, tag: ChunkTag) -> Option<&mut WindowSlot> {
        self.slots.iter_mut().find(|s| s.chunk.tag() == tag)
    }

    /// Marks `tag` as having issued its commit request.
    ///
    /// # Panics
    ///
    /// Panics if the tag is not in the window or is not the oldest
    /// executing chunk (chunks commit in order).
    pub fn mark_commit_pending(&mut self, tag: ChunkTag) {
        let oldest_executing = self
            .slots
            .iter_mut()
            .find(|s| s.phase == ChunkPhase::Executing)
            .expect("no executing chunk");
        assert_eq!(
            oldest_executing.chunk.tag(),
            tag,
            "chunks must request commit in order"
        );
        oldest_executing.phase = ChunkPhase::CommitPending;
    }

    /// Retires the oldest chunk after a successful commit; returns its tag.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the oldest chunk is not
    /// commit-pending.
    pub fn retire_oldest(&mut self) -> ChunkTag {
        let slot = self.slots.first().expect("retire from empty window");
        assert_eq!(
            slot.phase,
            ChunkPhase::CommitPending,
            "only commit-pending chunks retire"
        );
        let tag = slot.chunk.tag();
        self.slots.remove(0);
        tag
    }

    /// Squashes `tag` and every younger chunk from this core. Returns the
    /// squashed tags, oldest first (empty if `tag` is not in flight).
    pub fn squash_from(&mut self, tag: ChunkTag) -> Vec<ChunkTag> {
        let Some(pos) = self.slots.iter().position(|s| s.chunk.tag() == tag) else {
            return Vec::new();
        };
        let squashed: Vec<ChunkTag> = self.slots[pos..].iter().map(|s| s.chunk.tag()).collect();
        self.slots.truncate(pos);
        self.squashes += squashed.len() as u64;
        squashed
    }

    /// Squashes whichever in-flight chunks conflict with a committed write
    /// signature (and their younger siblings). Returns squashed tags,
    /// oldest first.
    pub fn squash_conflicting(&mut self, wsig: &Signature) -> Vec<ChunkTag> {
        let hit = self
            .slots
            .iter()
            .find(|s| s.chunk.conflicts_with_writer(wsig))
            .map(|s| s.chunk.tag());
        match hit {
            Some(tag) => self.squash_from(tag),
            None => Vec::new(),
        }
    }

    /// Number of chunks in flight.
    pub fn in_flight(&self) -> usize {
        self.slots.len()
    }

    /// Total chunks squashed so far.
    pub fn squash_count(&self) -> u64 {
        self.squashes
    }

    /// The owning core.
    pub fn core(&self) -> sb_mem::CoreId {
        self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_mem::{CoreId, DirId, LineAddr};
    use sb_sigs::SignatureConfig;

    fn window() -> ChunkWindow {
        ChunkWindow::new(CoreId(2), 2, SignatureConfig::paper_default())
    }

    #[test]
    fn fills_to_max_active() {
        let mut w = window();
        let t0 = w.start_chunk().unwrap();
        w.mark_commit_pending(t0);
        let _t1 = w.start_chunk().unwrap();
        assert!(!w.has_free_slot());
        assert!(w.start_chunk().is_none());
        assert_eq!(w.in_flight(), 2);
    }

    #[test]
    fn tags_are_sequential() {
        let mut w = window();
        let t0 = w.start_chunk().unwrap();
        w.mark_commit_pending(t0);
        let t1 = w.start_chunk().unwrap();
        assert_eq!(t1, t0.next());
    }

    #[test]
    fn retire_frees_slot() {
        let mut w = window();
        let t0 = w.start_chunk().unwrap();
        w.mark_commit_pending(t0);
        let t1 = w.start_chunk().unwrap();
        assert_eq!(w.retire_oldest(), t0);
        assert!(w.has_free_slot());
        assert_eq!(w.oldest().unwrap().chunk.tag(), t1);
    }

    #[test]
    #[should_panic(expected = "commit in order")]
    fn out_of_order_commit_panics() {
        let mut w = ChunkWindow::new(CoreId(2), 3, SignatureConfig::paper_default());
        let _t0 = w.start_chunk().unwrap();
        let t1 = w.start_chunk().unwrap();
        // t0 is still executing; t1 may not jump the queue.
        w.mark_commit_pending(t1);
    }

    #[test]
    #[should_panic(expected = "no executing chunk")]
    fn double_commit_pending_panics() {
        let mut w = window();
        let t0 = w.start_chunk().unwrap();
        w.mark_commit_pending(t0);
        w.mark_commit_pending(t0);
    }

    #[test]
    #[should_panic(expected = "only commit-pending")]
    fn retiring_executing_chunk_panics() {
        let mut w = window();
        w.start_chunk().unwrap();
        w.retire_oldest();
    }

    #[test]
    fn squash_from_takes_younger_too() {
        let mut w = window();
        let t0 = w.start_chunk().unwrap();
        w.mark_commit_pending(t0);
        let t1 = w.start_chunk().unwrap();
        let squashed = w.squash_from(t0);
        assert_eq!(squashed, vec![t0, t1]);
        assert_eq!(w.in_flight(), 0);
        assert_eq!(w.squash_count(), 2);
        // Squashing an unknown tag is a no-op.
        assert!(w.squash_from(t0).is_empty());
    }

    #[test]
    fn squash_youngest_only() {
        let mut w = window();
        let t0 = w.start_chunk().unwrap();
        w.mark_commit_pending(t0);
        let t1 = w.start_chunk().unwrap();
        let squashed = w.squash_from(t1);
        assert_eq!(squashed, vec![t1]);
        assert_eq!(w.oldest().unwrap().chunk.tag(), t0);
    }

    #[test]
    fn squash_conflicting_uses_signatures() {
        let mut w = window();
        let t0 = w.start_chunk().unwrap();
        w.youngest_mut()
            .unwrap()
            .chunk
            .record_read(LineAddr(77), DirId(0));
        w.mark_commit_pending(t0);
        let _t1 = w.start_chunk().unwrap();
        let hit = Signature::from_lines(SignatureConfig::paper_default(), [77u64]);
        let squashed = w.squash_conflicting(&hit);
        assert_eq!(squashed.len(), 2, "older conflicting chunk takes younger");
        let miss = Signature::from_lines(SignatureConfig::paper_default(), [123_456u64]);
        assert!(w.squash_conflicting(&miss).is_empty());
    }

    #[test]
    fn new_chunks_after_squash_get_fresh_tags() {
        let mut w = window();
        let t0 = w.start_chunk().unwrap();
        w.squash_from(t0);
        let t_new = w.start_chunk().unwrap();
        assert_eq!(t_new.seq(), 1, "squashed seq numbers are not reused");
    }
}
