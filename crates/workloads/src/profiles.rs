//! Per-application footprint profiles.
//!
//! Numbers are calibrated against the paper's own characterization:
//! Figures 9–10 (average directories per commit, split into write group
//! and read group), Figures 11–12 (their distributions), §6.1's notes on
//! Radix's scattered bucket writes and on the superlinear speedups of
//! Ocean, Cholesky and Raytrace (single-processor runs overflow one L2),
//! and §6.1's squash rates (1.5% data conflicts at 64 processors).

/// Benchmark suite of an application.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPLASH-2 (11 applications; LU and Ocean are the contiguous
    /// versions per §5).
    Splash2,
    /// PARSEC (7 applications; small inputs except Dedup/Swaptions, §5).
    Parsec,
}

impl Suite {
    /// The paper's name for the suite.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Splash2 => "SPLASH-2",
            Suite::Parsec => "PARSEC",
        }
    }
}

/// The synthetic footprint model of one application.
///
/// # Examples
///
/// ```
/// use sb_workloads::AppProfile;
///
/// let radix = AppProfile::by_name("Radix").unwrap();
/// assert!(radix.write_scatter, "Radix scatters bucket writes");
/// assert_eq!(AppProfile::all().len(), 18);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppProfile {
    /// Application name as used in the paper's figures.
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Dynamic instructions per chunk (Table 2: 2000).
    pub chunk_insns: u64,
    /// Fraction of instructions that are memory references.
    pub mem_ratio: f64,
    /// Fraction of references that are stores.
    pub write_frac: f64,
    /// Fraction of references targeting the thread-private region.
    pub private_frac: f64,
    /// Mean distinct *shared* pages written per chunk (write-group size
    /// driver, Figures 9–10).
    pub write_pages: f64,
    /// Mean distinct shared pages read per chunk (read-group driver).
    pub read_pages: f64,
    /// Radix-style scatter: write pages drawn uniformly from a large
    /// bucket region with no spatial locality (§6.1).
    pub write_scatter: bool,
    /// Mean sequential run length, in cache lines.
    pub seq_run: f64,
    /// Probability a shared page is re-drawn from the thread's recent
    /// pages (temporal locality).
    pub reuse_frac: f64,
    /// Per-thread private working set, KB.
    pub private_ws_kb: u32,
    /// Whether the "private" data is a partition of the problem (grids,
    /// scene, matrix panels): a 1-thread run then owns the whole problem
    /// and overflows a single L2 — the §6.1 superlinear mechanism.
    pub private_is_partition: bool,
    /// Total shared working set, KB.
    pub shared_ws_kb: u32,
    /// Fraction of write pages drawn from the truly-shared pool instead
    /// of the thread's shard (drives write-write conflicts and sharer
    /// invalidations).
    pub shared_write_frac: f64,
    /// Probability a fresh shared read strays into the write region
    /// (producer-consumer sharing; drives read-write conflicts).
    pub rw_overlap: f64,
    /// Per-chunk probability of touching a contended hot line.
    pub conflict_prob: f64,
    /// Number of hot lines.
    pub hot_lines: u32,
    /// Probability a hot-line touch is a write.
    pub hot_write_frac: f64,
}

impl AppProfile {
    const fn base(name: &'static str, suite: Suite) -> AppProfile {
        AppProfile {
            name,
            suite,
            chunk_insns: 2000,
            mem_ratio: 0.22,
            write_frac: 0.25,
            private_frac: 0.60,
            write_pages: 1.5,
            read_pages: 1.5,
            write_scatter: false,
            seq_run: 6.0,
            reuse_frac: 0.85,
            private_ws_kb: 96,
            private_is_partition: false,
            shared_ws_kb: 4096,
            shared_write_frac: 0.05,
            rw_overlap: 0.08,
            conflict_prob: 0.02,
            hot_lines: 16,
            hot_write_frac: 0.3,
        }
    }

    // ----- SPLASH-2 ------------------------------------------------------

    /// Radix sort: bucket writes scattered across many pages with no
    /// spatial locality — "practically all of the directories in the
    /// group record writes" (§6.2); the worst case for TCC/SEQ.
    pub fn radix() -> Self {
        AppProfile {
            mem_ratio: 0.15,
            write_frac: 0.30,
            private_frac: 0.55,
            write_pages: 12.0,
            read_pages: 1.0,
            write_scatter: true,
            seq_run: 8.0,
            rw_overlap: 0.10,
            conflict_prob: 0.005,
            ..Self::base("Radix", Suite::Splash2)
        }
    }

    /// Cholesky factorization; superlinear at 32/64 procs (one L2 cannot
    /// hold the single-processor working set, §6.1).
    pub fn cholesky() -> Self {
        AppProfile {
            write_pages: 1.4,
            read_pages: 1.6,
            private_ws_kb: 384,
            private_is_partition: true,
            seq_run: 8.0,
            ..Self::base("Cholesky", Suite::Splash2)
        }
    }

    /// Barnes-Hut N-body: pointer-chasing over a shared octree — wide
    /// read groups and noticeable conflicts.
    pub fn barnes() -> Self {
        AppProfile {
            write_pages: 2.5,
            read_pages: 3.5,
            seq_run: 2.5,
            reuse_frac: 0.6,
            rw_overlap: 0.15,
            conflict_prob: 0.05,
            ..Self::base("Barnes", Suite::Splash2)
        }
    }

    /// FFT: blocked transposes with high spatial locality.
    pub fn fft() -> Self {
        AppProfile {
            write_pages: 2.0,
            read_pages: 1.0,
            seq_run: 12.0,
            reuse_frac: 0.9,
            conflict_prob: 0.005,
            ..Self::base("FFT", Suite::Splash2)
        }
    }

    /// Water-nsquared.
    pub fn water_n() -> Self {
        AppProfile {
            write_pages: 1.4,
            read_pages: 2.0,
            conflict_prob: 0.02,
            ..Self::base("Water-N", Suite::Splash2)
        }
    }

    /// Fast multipole method: mid-size read and write groups.
    pub fn fmm() -> Self {
        AppProfile {
            write_pages: 2.0,
            read_pages: 2.5,
            seq_run: 3.5,
            conflict_prob: 0.035,
            ..Self::base("FMM", Suite::Splash2)
        }
    }

    /// LU (contiguous): dense blocked kernel, very local.
    pub fn lu() -> Self {
        AppProfile {
            write_pages: 1.2,
            read_pages: 0.8,
            seq_run: 14.0,
            reuse_frac: 0.92,
            conflict_prob: 0.004,
            ..Self::base("LU", Suite::Splash2)
        }
    }

    /// Ocean (contiguous): stencil sweeps; superlinear (§6.1).
    pub fn ocean() -> Self {
        AppProfile {
            write_pages: 2.0,
            read_pages: 1.2,
            seq_run: 12.0,
            private_ws_kb: 384,
            private_is_partition: true,
            conflict_prob: 0.01,
            ..Self::base("Ocean", Suite::Splash2)
        }
    }

    /// Water-spatial.
    pub fn water_s() -> Self {
        AppProfile {
            write_pages: 1.4,
            read_pages: 1.5,
            ..Self::base("Water-S", Suite::Splash2)
        }
    }

    /// Radiosity: irregular task-stealing workload.
    pub fn radiosity() -> Self {
        AppProfile {
            write_pages: 2.0,
            read_pages: 2.0,
            seq_run: 3.0,
            conflict_prob: 0.03,
            ..Self::base("Radiosity", Suite::Splash2)
        }
    }

    /// Raytrace: shared-scene reads dominate; superlinear (§6.1).
    pub fn raytrace() -> Self {
        AppProfile {
            write_frac: 0.15,
            write_pages: 1.3,
            read_pages: 2.5,
            seq_run: 3.0,
            private_ws_kb: 320,
            private_is_partition: true,
            conflict_prob: 0.015,
            ..Self::base("Raytrace", Suite::Splash2)
        }
    }

    // ----- PARSEC --------------------------------------------------------

    /// Vips: image pipeline.
    pub fn vips() -> Self {
        AppProfile {
            write_pages: 2.0,
            read_pages: 2.0,
            seq_run: 10.0,
            ..Self::base("Vips", Suite::Parsec)
        }
    }

    /// Swaptions (large input per §5): mostly private Monte-Carlo.
    pub fn swaptions() -> Self {
        AppProfile {
            private_frac: 0.8,
            write_pages: 1.2,
            read_pages: 1.0,
            conflict_prob: 0.003,
            ..Self::base("Swaptions", Suite::Parsec)
        }
    }

    /// Blackscholes: wide per-chunk footprint over the options array —
    /// large groups, heavy TCC/SEQ serialization (§6.1).
    pub fn blackscholes() -> Self {
        AppProfile {
            write_pages: 4.0,
            read_pages: 4.0,
            seq_run: 4.0,
            reuse_frac: 0.55,
            conflict_prob: 0.025,
            ..Self::base("Blackscholes", Suite::Parsec)
        }
    }

    /// Fluidanimate.
    pub fn fluidanimate() -> Self {
        AppProfile {
            write_pages: 2.0,
            read_pages: 2.0,
            seq_run: 4.0,
            conflict_prob: 0.025,
            ..Self::base("Fluidanimate", Suite::Parsec)
        }
    }

    /// Canneal (medium-class behaviour): random swaps over a huge netlist
    /// — very low locality, the widest read groups in PARSEC (§6.2).
    pub fn canneal() -> Self {
        AppProfile {
            write_pages: 3.0,
            read_pages: 6.0,
            seq_run: 1.5,
            reuse_frac: 0.35,
            rw_overlap: 0.2,
            shared_ws_kb: 16 * 1024,
            conflict_prob: 0.05,
            ..Self::base("Canneal", Suite::Parsec)
        }
    }

    /// Dedup (medium input per §5).
    pub fn dedup() -> Self {
        AppProfile {
            write_pages: 2.0,
            read_pages: 2.0,
            seq_run: 8.0,
            conflict_prob: 0.03,
            ..Self::base("Dedup", Suite::Parsec)
        }
    }

    /// Facesim.
    pub fn facesim() -> Self {
        AppProfile {
            write_pages: 2.0,
            read_pages: 2.0,
            seq_run: 6.0,
            ..Self::base("Facesim", Suite::Parsec)
        }
    }

    /// The 11 SPLASH-2 applications, in the order of Figure 7.
    pub fn splash2() -> Vec<AppProfile> {
        vec![
            Self::radix(),
            Self::cholesky(),
            Self::barnes(),
            Self::fft(),
            Self::water_n(),
            Self::fmm(),
            Self::lu(),
            Self::ocean(),
            Self::water_s(),
            Self::radiosity(),
            Self::raytrace(),
        ]
    }

    /// The 7 PARSEC applications, in the order of Figure 8.
    pub fn parsec() -> Vec<AppProfile> {
        vec![
            Self::vips(),
            Self::swaptions(),
            Self::blackscholes(),
            Self::fluidanimate(),
            Self::canneal(),
            Self::dedup(),
            Self::facesim(),
        ]
    }

    /// All 18 applications (SPLASH-2 then PARSEC).
    pub fn all() -> Vec<AppProfile> {
        let mut v = Self::splash2();
        v.extend(Self::parsec());
        v
    }

    /// A randomized, conflict-heavy profile for the `sb-check` fuzzer:
    /// every footprint knob is drawn deterministically from `seed`, biased
    /// toward small, hot, heavily shared working sets so that commits
    /// collide, groups overlap and squashes actually happen in short
    /// runs. Not part of [`AppProfile::all`] — it models no benchmark.
    pub fn synthetic(seed: u64) -> AppProfile {
        let mut rng = sb_engine::SplitMix64::new(seed ^ 0x5e_ed_f0_0d);
        // Uniform draw in [lo, hi).
        let mut f =
            |lo: f64, hi: f64| lo + (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo);
        AppProfile {
            chunk_insns: 300 + (f(0.0, 1.0) * 900.0) as u64, // 300..1200: fast chunks
            mem_ratio: f(0.15, 0.35),
            write_frac: f(0.20, 0.45),
            private_frac: f(0.25, 0.65),
            write_pages: f(1.0, 6.0),
            read_pages: f(1.0, 6.0),
            write_scatter: f(0.0, 1.0) < 0.3,
            seq_run: f(1.5, 8.0),
            reuse_frac: f(0.3, 0.9),
            private_ws_kb: 16 + (f(0.0, 1.0) * 48.0) as u32,
            private_is_partition: false,
            shared_ws_kb: 256 + (f(0.0, 1.0) * 1792.0) as u32, // small pool: dense sharing
            shared_write_frac: f(0.10, 0.50),
            rw_overlap: f(0.10, 0.40),
            conflict_prob: f(0.05, 0.30),
            hot_lines: 4 + (f(0.0, 1.0) * 28.0) as u32,
            hot_write_frac: f(0.3, 0.8),
            ..Self::base("Synthetic", Suite::Splash2)
        }
    }

    /// Looks an application up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<AppProfile> {
        Self::all()
            .into_iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Whether the single-processor working set overflows one L2 — the
    /// §6.1 superlinear-speedup mechanism.
    pub fn expects_superlinear(&self) -> bool {
        self.private_is_partition
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_counts_match_paper() {
        assert_eq!(AppProfile::splash2().len(), 11);
        assert_eq!(AppProfile::parsec().len(), 7);
        assert_eq!(AppProfile::all().len(), 18);
        assert!(AppProfile::splash2()
            .iter()
            .all(|p| p.suite == Suite::Splash2));
        assert!(AppProfile::parsec()
            .iter()
            .all(|p| p.suite == Suite::Parsec));
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let all = AppProfile::all();
        for p in &all {
            assert_eq!(AppProfile::by_name(p.name).unwrap().name, p.name);
        }
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 18);
        assert!(AppProfile::by_name("nosuchapp").is_none());
        assert_eq!(AppProfile::by_name("radix").unwrap().name, "Radix");
    }

    #[test]
    fn paper_characterizations_hold() {
        // §6.2: Radix writes scatter and dominate its group.
        let radix = AppProfile::radix();
        assert!(radix.write_scatter);
        assert!(radix.write_pages > 8.0);
        assert!(radix.write_pages > radix.read_pages * 5.0);
        // §6.1: superlinear trio.
        for name in ["Ocean", "Cholesky", "Raytrace"] {
            let p = AppProfile::by_name(name).unwrap();
            assert!(p.expects_superlinear(), "{name}");
            assert!(p.private_is_partition, "{name}");
        }
        assert!(!AppProfile::fft().expects_superlinear());
        // §6.2: Canneal has the widest PARSEC read groups.
        let canneal = AppProfile::canneal();
        for p in AppProfile::parsec() {
            assert!(canneal.read_pages >= p.read_pages);
        }
        // Chunk size is Table 2's 2000 instructions everywhere.
        assert!(AppProfile::all().iter().all(|p| p.chunk_insns == 2000));
    }

    #[test]
    fn sanity_of_fractions() {
        for p in AppProfile::all() {
            assert!((0.0..=1.0).contains(&p.mem_ratio), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.write_frac), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.private_frac), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.reuse_frac), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.conflict_prob), "{}", p.name);
            assert!(p.write_pages >= 0.5 && p.read_pages >= 0.5, "{}", p.name);
            assert!(p.seq_run >= 1.0, "{}", p.name);
        }
    }

    #[test]
    fn synthetic_profiles_are_deterministic_and_sane() {
        for seed in 0..200u64 {
            let a = AppProfile::synthetic(seed);
            let b = AppProfile::synthetic(seed);
            assert_eq!(a, b, "pure function of the seed");
            assert!((0.0..=1.0).contains(&a.mem_ratio));
            assert!((0.0..=1.0).contains(&a.write_frac));
            assert!((0.0..=1.0).contains(&a.private_frac));
            assert!((0.0..=1.0).contains(&a.reuse_frac));
            assert!((0.0..=1.0).contains(&a.conflict_prob));
            assert!(a.write_pages >= 0.5 && a.read_pages >= 0.5);
            assert!(a.seq_run >= 1.0);
            assert!((300..1200).contains(&a.chunk_insns));
            assert!(a.hot_lines >= 4);
            assert!(a.conflict_prob >= 0.05, "fuzz profiles are conflict-heavy");
        }
        assert_ne!(
            AppProfile::synthetic(1),
            AppProfile::synthetic(2),
            "seeds actually vary the footprint"
        );
        // Not a benchmark model: stays out of the paper's app list.
        assert_eq!(AppProfile::all().len(), 18);
        assert!(AppProfile::by_name("Synthetic").is_none());
    }

    #[test]
    fn suite_labels() {
        assert_eq!(Suite::Splash2.label(), "SPLASH-2");
        assert_eq!(Suite::Parsec.label(), "PARSEC");
    }
}
