//! The chunk-stream generator.

use std::collections::VecDeque;

use sb_chunks::{ChunkSpec, MemAccess};
use sb_engine::Xoshiro256;
use sb_mem::{Addr, LineAddr, PAGE_BYTES};

use crate::profiles::AppProfile;

/// Address-space layout of the synthetic programs: each thread gets a
/// private heap, all threads share a common heap, and scatter-writing
/// apps (Radix) additionally target a large bucket region.
const PRIVATE_BASE: u64 = 0x1000_0000;
const PRIVATE_STRIDE: u64 = 0x0100_0000; // 16 MB per thread
const SHARED_BASE: u64 = 0x8000_0000;
const BUCKET_BASE: u64 = 0xC000_0000;
const BUCKET_PAGES: u64 = 4096; // 16 MB of buckets

const LINES_PER_PAGE: u64 = PAGE_BYTES / sb_mem::LINE_BYTES;
const RECENT_PAGES: usize = 24;
/// Shared-page accesses cycle within a sub-page window: real kernels work
/// on blocks, not whole pages, so a visited page turns cache-hot after a
/// couple of visits instead of supplying cold lines forever.
const PAGE_WINDOW: u64 = 32;

/// A 32-byte line holds several words; real code touches a line multiple
/// times before moving on. Without this, every access would be a distinct
/// line, the L1 would never hit, and signatures would saturate.
const TOUCHES_PER_PRIVATE_LINE: u64 = 8;
const TOUCHES_PER_SHARED_LINE: u64 = 6;
const TOUCHES_PER_SCATTER_LINE: usize = 3;

#[derive(Clone, Debug)]
struct ThreadState {
    rng: Xoshiro256,
    /// Streaming cursor over the private working set, in *touches*
    /// (``TOUCHES_PER_PRIVATE_LINE`` touches advance one line).
    private_cursor: u64,
    /// Recently used shared pages (temporal locality pool).
    recent: VecDeque<u64>,
    /// Sequential consumption cursor per recent page: re-visits continue
    /// where the last run stopped, so previously-touched lines stay hot
    /// and fresh-line (miss) rates match real locality-tuned codes.
    page_cursor: std::collections::HashMap<u64, u64>,
}

/// Deterministic per-thread chunk streams for one application.
///
/// # Examples
///
/// ```
/// use sb_workloads::{AppProfile, WorkloadGen};
///
/// let mut g = WorkloadGen::new(AppProfile::fft(), 4, 42);
/// let chunk = g.next_chunk(0);
/// assert!(chunk.instructions() >= 500 && chunk.instructions() <= 2300);
/// assert!(!chunk.accesses().is_empty());
/// // Same profile + seed => same stream.
/// let mut g2 = WorkloadGen::new(AppProfile::fft(), 4, 42);
/// assert_eq!(g2.next_chunk(0), chunk);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadGen {
    profile: AppProfile,
    threads: Vec<ThreadState>,
    nthreads: usize,
    rr_next: usize,
}

impl WorkloadGen {
    /// Creates streams for `threads` threads of `profile`, seeded by
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(profile: AppProfile, threads: usize, seed: u64) -> Self {
        assert!(threads > 0, "need at least one thread");
        let mut root = Xoshiro256::new(seed ^ fxhash(profile.name));
        let nthreads = threads;
        let threads_vec = (0..nthreads)
            .map(|t| ThreadState {
                rng: root.fork(t as u64),
                private_cursor: 0,
                recent: VecDeque::with_capacity(RECENT_PAGES),
                page_cursor: std::collections::HashMap::new(),
            })
            .collect();
        WorkloadGen {
            profile,
            threads: threads_vec,
            nthreads,
            rr_next: 0,
        }
    }

    /// Pages of the shared (and, for scatter apps, bucket) pools. The
    /// simulator pre-touches these round-robin across tiles, modelling the
    /// parallel initialization loops that, under first-touch mapping,
    /// distribute shared data across directory modules before the
    /// measured region begins.
    pub fn shared_pool_pages(&self) -> Vec<sb_mem::PageAddr> {
        let p = self.profile;
        let shared_pages = (p.shared_ws_kb as u64 * 1024) / PAGE_BYTES;
        let mut v: Vec<sb_mem::PageAddr> = (0..shared_pages)
            .map(|i| sb_mem::PageAddr(SHARED_BASE / PAGE_BYTES + i))
            .collect();
        if p.write_scatter {
            v.extend((0..BUCKET_PAGES).map(|i| sb_mem::PageAddr(BUCKET_BASE / PAGE_BYTES + i)));
        }
        v
    }

    /// The private working-set region of thread `t`: (first line, line
    /// count). The simulator pre-fills it into the core's caches (a
    /// steady-state thread has its scratch resident).
    pub fn private_region(&self, t: usize) -> (sb_mem::LineAddr, u64) {
        let base = (PRIVATE_BASE + t as u64 * PRIVATE_STRIDE) / sb_mem::LINE_BYTES;
        let lines = (self.profile.private_ws_kb as u64 * 1024) / sb_mem::LINE_BYTES;
        (sb_mem::LineAddr(base), lines)
    }

    /// The profile being generated.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Generates thread `t`'s next chunk.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn next_chunk(&mut self, t: usize) -> ChunkSpec {
        let p = self.profile;
        let private_lines = (p.private_ws_kb as u64 * 1024) / sb_mem::LINE_BYTES;
        let shared_pages = (p.shared_ws_kb as u64 * 1024) / PAGE_BYTES;
        let st = &mut self.threads[t];
        let rng = &mut st.rng;

        // ±10% jitter on the chunk size; cache overflows and system calls
        // "can further reduce the average size" (§2.2) — modelled by the
        // occasional short chunk.
        let insns = if rng.gen_bool(0.05) {
            500 + rng.gen_range(1000)
        } else {
            let base = p.chunk_insns;
            base - base / 10 + rng.gen_range(base / 5 + 1)
        };
        let n_acc = ((insns as f64 * p.mem_ratio) as usize).max(1);
        let n_wr = ((n_acc as f64 * p.write_frac) as usize).max(1);
        let n_rd = n_acc - n_wr;

        // --- choose this chunk's page working set ---
        let jitter = |rng: &mut Xoshiro256, mean: f64| -> usize {
            // Log-ish spread producing the long tails of Figures 11–12.
            let f = 0.5
                + rng.gen_f64()
                + if rng.gen_bool(0.08) {
                    rng.gen_f64() * 2.0
                } else {
                    0.0
                };
            ((mean * f).round() as usize).max(1)
        };
        let n_wpages = jitter(rng, p.write_pages);
        let n_rpages = jitter(rng, p.read_pages);

        // The shared pool is split: the lower half is read-mostly data,
        // the upper half holds the per-thread write shards. Reads stray
        // into the write region with probability `rw_overlap` (producer-
        // consumer sharing); occasional writes hit the read-mostly region
        // (`shared_write_frac`), invalidating its reader population.
        let read_region = (shared_pages / 2).max(1);
        let pick_shared_page = |rng: &mut Xoshiro256, recent: &mut VecDeque<u64>| -> u64 {
            let page = if !recent.is_empty() && rng.gen_bool(p.reuse_frac) {
                recent[rng.gen_range(recent.len() as u64) as usize]
            } else if rng.gen_bool(p.rw_overlap) {
                SHARED_BASE / PAGE_BYTES
                    + read_region
                    + rng.gen_range((shared_pages - read_region).max(1))
            } else {
                SHARED_BASE / PAGE_BYTES + rng.gen_range(read_region)
            };
            if !recent.contains(&page) {
                if recent.len() == RECENT_PAGES {
                    recent.pop_front();
                }
                recent.push_back(page);
            }
            page
        };

        // Write pages are sharded per thread (page % threads == t): real
        // codes mostly write thread-owned tiles/buckets, so concurrent
        // write-write page collisions are rare; cross-thread conflicts
        // come from reads of other threads' pages and from the hot lines.
        let nthreads = self.nthreads as u64;
        let mut wpages: Vec<u64> = Vec::with_capacity(n_wpages);
        for _ in 0..n_wpages {
            for _attempt in 0..4 {
                let page = if p.write_scatter {
                    let shard = BUCKET_PAGES / nthreads;
                    BUCKET_BASE / PAGE_BYTES + t as u64 + nthreads * rng.gen_range(shard.max(1))
                } else {
                    let write_region = shared_pages - read_region;
                    let shard = write_region / nthreads;
                    if shard == 0 || rng.gen_bool(p.shared_write_frac) {
                        // A minority of writes hit the read-mostly region.
                        SHARED_BASE / PAGE_BYTES + rng.gen_range(read_region)
                    } else {
                        SHARED_BASE / PAGE_BYTES
                            + read_region
                            + t as u64
                            + nthreads * rng.gen_range(shard)
                    }
                };
                if !wpages.contains(&page) {
                    wpages.push(page);
                    break;
                }
            }
        }
        if wpages.is_empty() {
            wpages.push(SHARED_BASE / PAGE_BYTES + t as u64);
        }
        let mut rpages: Vec<u64> = Vec::with_capacity(n_rpages);
        for _ in 0..n_rpages {
            for _attempt in 0..4 {
                let page = pick_shared_page(rng, &mut st.recent);
                if !rpages.contains(&page) {
                    rpages.push(page);
                    break;
                }
            }
        }
        if rpages.is_empty() {
            rpages.push(SHARED_BASE / PAGE_BYTES);
        }

        // --- generate the access list ---
        let mut accesses = Vec::with_capacity(n_acc);
        let private_base_line = (PRIVATE_BASE + t as u64 * PRIVATE_STRIDE) / sb_mem::LINE_BYTES;

        // Reads: sequential runs over private working set or shared pages.
        let mut reads_left = n_rd;
        while reads_left > 0 {
            let run = rng
                .gen_run_len(p.seq_run * TOUCHES_PER_SHARED_LINE as f64)
                .min(reads_left as u64);
            if rng.gen_bool(p.private_frac) {
                for _ in 0..run {
                    let line = private_base_line
                        + (st.private_cursor / TOUCHES_PER_PRIVATE_LINE) % private_lines.max(1);
                    st.private_cursor += 1;
                    accesses.push(MemAccess::read(LineAddr(line)));
                }
            } else {
                let page = rpages[rng.gen_range(rpages.len() as u64) as usize];
                // Mostly continue consuming the page where we left off
                // (hot lines); occasionally re-read an earlier offset.
                let cur = st.page_cursor.entry(page).or_insert(0);
                let start = if rng.gen_bool(0.25) && *cur > 0 {
                    rng.gen_range(*cur)
                } else {
                    let s = *cur;
                    *cur = (*cur + run / TOUCHES_PER_SHARED_LINE + 1) % PAGE_WINDOW;
                    s
                };
                for i in 0..run {
                    let line =
                        page * LINES_PER_PAGE + (start + i / TOUCHES_PER_SHARED_LINE) % PAGE_WINDOW;
                    accesses.push(MemAccess::read(LineAddr(line)));
                }
            }
            reads_left -= run as usize;
        }

        // Writes: spread over the chunk's write pages. Scatter apps
        // (Radix) touch one or two bucket slots per page — wide directory
        // spread but few distinct lines, so the 2 Kbit W signature stays
        // sparse; other apps run short sequential bursts.
        let scatter_slots: Vec<u64> = if p.write_scatter {
            wpages
                .iter()
                .flat_map(|&page| {
                    let base = page * LINES_PER_PAGE;
                    vec![base + rng.gen_range(LINES_PER_PAGE)]
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut scatter_next = 0usize;
        let mut writes_left = n_wr;
        while writes_left > 0 {
            if rng.gen_bool(p.private_frac * 0.6) {
                // Private write (local page, local directory).
                let line = private_base_line
                    + (st.private_cursor / TOUCHES_PER_PRIVATE_LINE) % private_lines.max(1);
                st.private_cursor += 1;
                accesses.push(MemAccess::write(LineAddr(line)));
                writes_left -= 1;
                continue;
            }
            let page = wpages[rng.gen_range(wpages.len() as u64) as usize];
            if p.write_scatter {
                let line = scatter_slots[scatter_next % scatter_slots.len()];
                scatter_next += 1;
                let reps = TOUCHES_PER_SCATTER_LINE.min(writes_left);
                for _ in 0..reps {
                    accesses.push(MemAccess::write(LineAddr(line)));
                }
                writes_left -= reps;
            } else {
                let run = rng
                    .gen_run_len((p.seq_run / 2.0).max(1.0))
                    .min(writes_left as u64);
                let cur = st.page_cursor.entry(page).or_insert(0);
                let start = *cur;
                *cur = (*cur + run / TOUCHES_PER_SHARED_LINE + 1) % PAGE_WINDOW;
                for i in 0..run {
                    let line =
                        page * LINES_PER_PAGE + (start + i / TOUCHES_PER_SHARED_LINE) % PAGE_WINDOW;
                    accesses.push(MemAccess::write(LineAddr(line)));
                }
                writes_left -= run as usize;
            }
        }

        // Conflict injection: touch a hot shared line.
        if rng.gen_bool(p.conflict_prob) {
            let hot = Addr(SHARED_BASE).line().as_u64() + rng.gen_range(p.hot_lines.max(1) as u64);
            let acc = if rng.gen_bool(p.hot_write_frac) {
                MemAccess::write(LineAddr(hot))
            } else {
                MemAccess::read(LineAddr(hot))
            };
            accesses.push(acc);
        }

        // Interleave deterministically: shuffle with the thread RNG so
        // reads and writes mix as in real code.
        for i in (1..accesses.len()).rev() {
            let j = rng.gen_range((i + 1) as u64) as usize;
            accesses.swap(i, j);
        }
        let insns = insns.max(accesses.len() as u64);
        ChunkSpec::new(insns, accesses)
    }

    /// Round-robin across threads: used by the single-processor
    /// normalization runs, where one core executes every thread's work.
    pub fn next_chunk_any(&mut self) -> ChunkSpec {
        let t = self.rr_next;
        self.rr_next = (self.rr_next + 1) % self.threads.len();
        self.next_chunk(t)
    }
}

/// Tiny deterministic string hash (profile-name seeding).
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::AppProfile;
    use sb_chunks::{ActiveChunk, ChunkTag};
    use sb_mem::CoreId;
    use sb_sigs::SignatureConfig;

    /// Hash-based page→directory mapping, mirroring the simulator's
    /// parallel-initialization first touch (a plain modulo would correlate
    /// with the generator's per-thread page sharding).
    fn dirs_of_chunk(spec: &ChunkSpec, core: CoreId) -> (u32, u32) {
        let mut c = ActiveChunk::new(ChunkTag::new(core, 0), SignatureConfig::paper_default());
        for a in spec.accesses() {
            let page = a.line.page().as_u64();
            let home =
                sb_mem::DirId(((page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % 64) as u16);
            if a.is_write {
                c.record_write(a.line, home);
            } else {
                c.record_read(a.line, home);
            }
        }
        (c.write_dirs().len(), c.read_only_dirs().len())
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = WorkloadGen::new(AppProfile::barnes(), 8, 7);
        let mut b = WorkloadGen::new(AppProfile::barnes(), 8, 7);
        for t in 0..8 {
            assert_eq!(a.next_chunk(t), b.next_chunk(t));
        }
        let mut c = WorkloadGen::new(AppProfile::barnes(), 8, 8);
        assert_ne!(a.next_chunk(0), c.next_chunk(0));
    }

    #[test]
    fn threads_get_distinct_streams() {
        let mut g = WorkloadGen::new(AppProfile::fft(), 4, 1);
        let c0 = g.next_chunk(0);
        let c1 = g.next_chunk(1);
        assert_ne!(c0, c1);
    }

    #[test]
    fn chunk_sizes_near_2000() {
        let mut g = WorkloadGen::new(AppProfile::lu(), 2, 3);
        let mut total = 0u64;
        let n = 200;
        for _ in 0..n {
            let c = g.next_chunk(0);
            assert!(c.instructions() >= 500 && c.instructions() <= 2300);
            assert!(c.accesses().len() as u64 <= c.instructions());
            total += c.instructions();
        }
        let mean = total as f64 / n as f64;
        assert!((1700.0..2100.0).contains(&mean), "mean insns {mean}");
    }

    #[test]
    fn access_mix_tracks_profile() {
        let p = AppProfile::radix();
        let mut g = WorkloadGen::new(p, 2, 5);
        let mut reads = 0usize;
        let mut writes = 0usize;
        for _ in 0..100 {
            let c = g.next_chunk(0);
            reads += c.read_count();
            writes += c.write_count();
        }
        let frac = writes as f64 / (reads + writes) as f64;
        assert!(
            (p.write_frac - 0.1..p.write_frac + 0.1).contains(&frac),
            "write fraction {frac}"
        );
    }

    /// The generator's whole purpose: directories-per-commit must land in
    /// the bands the paper reports (Figures 9–10).
    #[test]
    fn radix_write_group_is_wide_fft_is_narrow() {
        let stats = |name: &str| -> (f64, f64) {
            let p = AppProfile::by_name(name).unwrap();
            let mut g = WorkloadGen::new(p, 16, 11);
            let (mut w, mut r) = (0u32, 0u32);
            let n = 60;
            for i in 0..n {
                let spec = g.next_chunk(i % 16);
                let (wd, rd) = dirs_of_chunk(&spec, CoreId((i % 16) as u16));
                w += wd;
                r += rd;
            }
            (w as f64 / n as f64, r as f64 / n as f64)
        };
        let (radix_w, radix_r) = stats("Radix");
        assert!(radix_w > 8.0, "Radix write group {radix_w}");
        assert!(
            radix_r < radix_w / 3.0,
            "Radix is write-dominated ({radix_r})"
        );
        let (fft_w, _fft_r) = stats("FFT");
        assert!(fft_w < 5.0, "FFT stays narrow ({fft_w})");
        let (can_w, can_r) = stats("Canneal");
        assert!(can_r > can_w, "Canneal is read-dominated ({can_w}/{can_r})");
        assert!(can_w + can_r > 5.0, "Canneal groups are wide");
    }

    #[test]
    fn round_robin_covers_all_threads() {
        let mut g = WorkloadGen::new(AppProfile::vips(), 3, 2);
        // Consume 3 chunks round-robin; compare against per-thread stream.
        let mut g2 = WorkloadGen::new(AppProfile::vips(), 3, 2);
        let rr: Vec<ChunkSpec> = (0..3).map(|_| g.next_chunk_any()).collect();
        for (t, c) in rr.iter().enumerate() {
            assert_eq!(*c, g2.next_chunk(t));
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        WorkloadGen::new(AppProfile::fft(), 0, 1);
    }

    /// Signature health: a 2 Kbit register only stays useful if chunks
    /// touch at most a ~hundred distinct lines. Every application model
    /// must respect that envelope.
    #[test]
    fn distinct_lines_per_chunk_stay_signature_friendly() {
        use std::collections::HashSet;
        for p in AppProfile::all() {
            let mut g = WorkloadGen::new(p, 8, 3);
            let mut worst = 0usize;
            for i in 0..40 {
                let spec = g.next_chunk(i % 8);
                let distinct: HashSet<u64> =
                    spec.accesses().iter().map(|a| a.line.as_u64()).collect();
                worst = worst.max(distinct.len());
            }
            assert!(
                worst <= 160,
                "{}: {worst} distinct lines per chunk saturates 2Kbit signatures",
                p.name
            );
        }
    }

    /// Write sharding: two threads' (non-scatter) write pages rarely
    /// collide, so write-write page conflicts come from the explicit
    /// shared-write fraction, not from accident.
    #[test]
    fn write_pages_are_thread_sharded() {
        use std::collections::HashSet;
        let p = AppProfile::fft();
        let mut g = WorkloadGen::new(p, 4, 9);
        let pages = |spec: &ChunkSpec| -> HashSet<u64> {
            spec.accesses()
                .iter()
                .filter(|a| a.is_write)
                .map(|a| a.line.page().as_u64())
                // Only shared-region pages (private pages are per-thread
                // by construction).
                .filter(|pg| pg * PAGE_BYTES >= SHARED_BASE && pg * PAGE_BYTES < BUCKET_BASE)
                .collect()
        };
        let mut collisions = 0;
        let mut total = 0;
        for _ in 0..30 {
            let a = pages(&g.next_chunk(0));
            let b = pages(&g.next_chunk(1));
            total += a.len().min(b.len()).max(1);
            collisions += a.intersection(&b).count();
        }
        assert!(
            (collisions as f64) < 0.2 * total as f64,
            "sharded write pages collide too much: {collisions}/{total}"
        );
    }
}
