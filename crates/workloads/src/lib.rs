//! Synthetic SPLASH-2 and PARSEC application models.
//!
//! The paper evaluates 11 SPLASH-2 and 7 PARSEC applications, executed
//! unmodified and automatically chopped into ~2000-instruction chunks
//! (§2.2). This reproduction cannot run the real binaries (no SESC, no
//! reference inputs — see DESIGN.md §1), so this crate provides
//! *calibrated synthetic generators*: per application, a [`AppProfile`]
//! captures the footprint statistics the protocols are sensitive to —
//!
//! * memory intensity and write fraction,
//! * the number of distinct pages written/read per chunk (which, through
//!   first-touch page mapping, becomes Figures 9–12's "directories per
//!   chunk commit"),
//! * whether writes scatter across the whole shared heap (Radix's bucket
//!   permutation — "the writes to these buckets are random ... and have no
//!   spatial locality", §6.1),
//! * spatial (sequential-run) and temporal (page-reuse) locality, which
//!   drive the cache-miss component of execution time, and
//! * inter-thread conflict probability on a small set of hot lines, which
//!   drives the squash rate (the paper reports 1.5% data-conflict
//!   squashes at 64 processors).
//!
//! [`WorkloadGen`] turns a profile into deterministic per-thread chunk
//! streams ([`sb_chunks::ChunkSpec`]), with a single-thread mode used for
//! the 1-processor normalization runs of Figures 7–8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod profiles;

pub use gen::WorkloadGen;
pub use profiles::{AppProfile, Suite};
