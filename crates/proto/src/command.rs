//! Commands a protocol issues to its host, and statistics events.

use sb_chunks::ChunkTag;
use sb_mem::{CoreId, DirId};
use sb_net::{MsgSize, TrafficClass};
use sb_sigs::SigHandle;

/// A protocol actor: a processor core or a directory module. (BulkSC's
/// central arbiter is modelled as the directory agent of the centre tile.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Core agent on a tile.
    Core(CoreId),
    /// Directory agent on a tile.
    Dir(DirId),
}

impl Endpoint {
    /// The tile index hosting this endpoint.
    pub fn tile(self) -> u16 {
        match self {
            Endpoint::Core(c) => c.0,
            Endpoint::Dir(d) => d.0,
        }
    }
}

/// Statistics events emitted by protocols. Hosts forward them to the
/// figure collectors; they have no semantic effect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoEvent {
    /// A chunk began trying to form its group (or acquire its commit
    /// resources, for the baselines).
    GroupFormationStarted {
        /// The committing chunk.
        tag: ChunkTag,
    },
    /// A chunk's group formed (resources acquired); commit processing
    /// begins. The bottleneck-ratio metric (§6.4.1) is sampled at each of
    /// these events.
    GroupFormed {
        /// The committing chunk.
        tag: ChunkTag,
        /// Number of directory modules in the group.
        dirs: u32,
    },
    /// Group formation failed (collision or resource conflict).
    GroupFailed {
        /// The committing chunk.
        tag: ChunkTag,
    },
    /// The chunk's commit fully completed.
    CommitCompleted {
        /// The committing chunk.
        tag: ChunkTag,
    },
    /// A completed chunk entered a wait queue (TCC/SEQ serialize chunks
    /// that share directory modules; §6.4.2's chunk-queue-length metric
    /// counts these).
    ChunkQueued {
        /// The queued chunk.
        tag: ChunkTag,
    },
    /// A queued chunk left the wait queue.
    ChunkUnqueued {
        /// The dequeued chunk.
        tag: ChunkTag,
    },
    /// A directory module was grabbed on behalf of a committing chunk
    /// (§3.2: the module's CST entry turned blocking — ScalableBulk's
    /// `Held`, an occupancy grant in SEQ/SEQ-TS/TCC, an arbiter slot in
    /// BulkSC). Purely observational: the trace exporter turns matching
    /// grab/release pairs into directory-occupancy spans.
    DirGrabbed {
        /// The grabbed directory module.
        dir: DirId,
        /// The chunk holding the grab.
        tag: ChunkTag,
    },
    /// The matching release of an earlier [`ProtoEvent::DirGrabbed`]:
    /// the module finished (or abandoned) the chunk's commit and can
    /// serve the next one.
    DirReleased {
        /// The released directory module.
        dir: DirId,
        /// The chunk that held the grab.
        tag: ChunkTag,
    },
}

/// An effect requested by a protocol, executed by the host.
#[derive(Clone, Debug)]
pub enum Command<M> {
    /// Send a protocol-internal message over the network.
    Send {
        /// Sending actor (determines the injection port and hop count).
        src: Endpoint,
        /// Receiving actor.
        dst: Endpoint,
        /// Wire size (for latency and Figures 18–19).
        size: MsgSize,
        /// Traffic class (for Figures 18–19).
        class: TrafficClass,
        /// The message; redelivered to the protocol on arrival.
        msg: M,
    },
    /// Deliver `msg` back to the protocol at `dst` after `delay` cycles
    /// without touching the network (local timer: backoff, service delay).
    After {
        /// Delay in cycles.
        delay: u64,
        /// Actor the message is delivered to.
        dst: Endpoint,
        /// The message.
        msg: M,
    },
    /// Notify the committing processor that its chunk committed
    /// (`commit success` in Table 1). The host models the network message
    /// from `from` to `core` and retires the chunk.
    CommitSuccess {
        /// The committing processor.
        core: CoreId,
        /// The committed chunk.
        tag: ChunkTag,
        /// The directory (group leader / arbiter) sending the notification.
        from: DirId,
    },
    /// Notify the committing processor that its commit failed
    /// (`commit failure`); the processor backs off and retries.
    CommitFailure {
        /// The committing processor.
        core: CoreId,
        /// The failed chunk.
        tag: ChunkTag,
        /// The directory sending the notification.
        from: DirId,
    },
    /// Send a bulk invalidation (`bulk inv`: the W signature) from a
    /// directory to a sharer processor. The host expands the signature
    /// against the core's caches, decides whether the core's in-flight
    /// chunks squash, and eventually calls
    /// [`CommitProtocol::bulk_inv_acked`](crate::CommitProtocol::bulk_inv_acked).
    BulkInv {
        /// The issuing directory (acks return here).
        from: DirId,
        /// The sharer processor to invalidate.
        to: CoreId,
        /// The committing chunk whose writes are being published.
        tag: ChunkTag,
        /// The committing chunk's W signature (shared, O(1) to clone).
        wsig: SigHandle,
        /// Wire size: ScalableBulk/BulkSC carry the 2 Kbit signature
        /// (`MsgSize::Signature`); TCC/SEQ send line-granular
        /// invalidations modelled as one `MsgSize::Line` message per
        /// directory.
        size: MsgSize,
    },
    /// Update directory `dir`'s sharer state for a committed chunk: every
    /// tracked line matching `wsig` becomes dirty-owned by `committer`.
    ApplyCommit {
        /// The directory to update.
        dir: DirId,
        /// The committed chunk's W signature (shared, O(1) to clone).
        wsig: SigHandle,
        /// The committing processor.
        committer: CoreId,
    },
    /// A statistics event.
    Event(ProtoEvent),
}

/// The buffer protocols push [`Command`]s into; the host drains it after
/// every protocol upcall.
///
/// # Examples
///
/// ```
/// use sb_proto::{Command, Endpoint, Outbox};
/// use sb_mem::DirId;
/// use sb_net::{MsgSize, TrafficClass};
///
/// let mut out: Outbox<&'static str> = Outbox::new();
/// out.send(
///     Endpoint::Dir(DirId(0)),
///     Endpoint::Dir(DirId(1)),
///     MsgSize::Small,
///     TrafficClass::SmallCMessage,
///     "grab",
/// );
/// assert_eq!(out.drain().len(), 1);
/// ```
#[derive(Debug)]
pub struct Outbox<M> {
    cmds: Vec<Command<M>>,
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox { cmds: Vec::new() }
    }

    /// Pushes a raw command.
    pub fn push(&mut self, cmd: Command<M>) {
        self.cmds.push(cmd);
    }

    /// Queues a network send.
    pub fn send(
        &mut self,
        src: Endpoint,
        dst: Endpoint,
        size: MsgSize,
        class: TrafficClass,
        msg: M,
    ) {
        self.cmds.push(Command::Send {
            src,
            dst,
            size,
            class,
            msg,
        });
    }

    /// Queues a local timer delivery.
    pub fn after(&mut self, delay: u64, dst: Endpoint, msg: M) {
        self.cmds.push(Command::After { delay, dst, msg });
    }

    /// Queues a commit-success notification.
    pub fn commit_success(&mut self, core: CoreId, tag: ChunkTag, from: DirId) {
        self.cmds.push(Command::CommitSuccess { core, tag, from });
    }

    /// Queues a commit-failure notification.
    pub fn commit_failure(&mut self, core: CoreId, tag: ChunkTag, from: DirId) {
        self.cmds.push(Command::CommitFailure { core, tag, from });
    }

    /// Queues a bulk invalidation carrying the full signature.
    pub fn bulk_inv(&mut self, from: DirId, to: CoreId, tag: ChunkTag, wsig: SigHandle) {
        self.bulk_inv_sized(from, to, tag, wsig, MsgSize::Signature);
    }

    /// Queues a bulk invalidation with an explicit wire size.
    pub fn bulk_inv_sized(
        &mut self,
        from: DirId,
        to: CoreId,
        tag: ChunkTag,
        wsig: SigHandle,
        size: MsgSize,
    ) {
        self.cmds.push(Command::BulkInv {
            from,
            to,
            tag,
            wsig,
            size,
        });
    }

    /// Queues a directory-state update for a committed chunk.
    pub fn apply_commit(&mut self, dir: DirId, wsig: SigHandle, committer: CoreId) {
        self.cmds.push(Command::ApplyCommit {
            dir,
            wsig,
            committer,
        });
    }

    /// Queues a statistics event.
    pub fn event(&mut self, ev: ProtoEvent) {
        self.cmds.push(Command::Event(ev));
    }

    /// Takes all queued commands, leaving the outbox empty.
    pub fn drain(&mut self) -> Vec<Command<M>> {
        std::mem::take(&mut self.cmds)
    }

    /// Moves all queued commands into `dst` (cleared first), keeping both
    /// buffers' capacity. Hot event loops call this once per protocol
    /// upcall so no step allocates a fresh command vector.
    pub fn drain_into(&mut self, dst: &mut Vec<Command<M>>) {
        dst.clear();
        dst.append(&mut self.cmds);
    }

    /// Number of queued commands.
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// Whether no commands are queued.
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_sigs::SignatureConfig;

    fn empty_sig() -> SigHandle {
        SigHandle::empty(SignatureConfig::paper_default())
    }

    #[test]
    fn outbox_accumulates_and_drains() {
        let mut out: Outbox<u32> = Outbox::new();
        assert!(out.is_empty());
        out.after(5, Endpoint::Core(CoreId(1)), 7);
        out.commit_success(CoreId(1), ChunkTag::new(CoreId(1), 0), DirId(0));
        out.commit_failure(CoreId(1), ChunkTag::new(CoreId(1), 1), DirId(0));
        out.bulk_inv(
            DirId(0),
            CoreId(2),
            ChunkTag::new(CoreId(1), 0),
            empty_sig(),
        );
        out.apply_commit(DirId(0), empty_sig(), CoreId(1));
        out.event(ProtoEvent::CommitCompleted {
            tag: ChunkTag::new(CoreId(1), 0),
        });
        assert_eq!(out.len(), 6);
        let cmds = out.drain();
        assert_eq!(cmds.len(), 6);
        assert!(out.is_empty());
        assert!(matches!(cmds[0], Command::After { delay: 5, .. }));
        assert!(matches!(cmds[1], Command::CommitSuccess { .. }));
        assert!(matches!(cmds[5], Command::Event(_)));
    }

    #[test]
    fn endpoint_tile() {
        assert_eq!(Endpoint::Core(CoreId(4)).tile(), 4);
        assert_eq!(Endpoint::Dir(DirId(9)).tile(), 9);
        assert_ne!(Endpoint::Core(CoreId(4)), Endpoint::Dir(DirId(4)));
    }
}
