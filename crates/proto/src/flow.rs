//! Causal-flow identity for message tracing.
//!
//! When a host traces causality (`sb-sim` with `SimConfig::obs` on), it
//! stamps every executed [`Command`](crate::Command) — message send,
//! self-timer, outcome notification, bulk invalidation — with a
//! [`FlowId`] and records which flow's handler caused it. Ids are dense
//! and allocated in dispatch order, so a child's id is always larger
//! than its parent's and the causal graph is acyclic by construction.
//!
//! The id is purely observational: hosts allocate [`FlowId::NONE`]
//! everywhere when tracing is off, and protocols never see flow ids at
//! all.

/// Identity of one causal message flow.
///
/// Dense and 1-based; [`FlowId::NONE`] (zero) means "no flow" — either
/// tracing is off, or the event had no traced cause (e.g. a core step).
///
/// # Examples
///
/// ```
/// use sb_proto::FlowId;
///
/// assert!(FlowId::NONE.is_none());
/// assert_eq!(FlowId::NONE.index(), None);
/// assert_eq!(FlowId(3).index(), Some(2));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl FlowId {
    /// The absent flow (tracing off, or no traced cause).
    pub const NONE: FlowId = FlowId(0);

    /// Whether this is the absent flow.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Index of this flow in a dense allocation-order vector, or `None`
    /// for [`FlowId::NONE`].
    pub fn index(self) -> Option<usize> {
        self.0.checked_sub(1).map(|i| i as usize)
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero_and_indexless() {
        assert_eq!(FlowId::NONE, FlowId(0));
        assert!(FlowId::NONE.is_none());
        assert_eq!(FlowId::NONE.index(), None);
        assert!(!FlowId(1).is_none());
        assert_eq!(FlowId(1).index(), Some(0));
        assert_eq!(FlowId(7).to_string(), "flow#7");
    }
}
