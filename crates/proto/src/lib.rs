//! Shared protocol API for chunk-commit coherence protocols.
//!
//! The paper evaluates four protocols (Table 3): **ScalableBulk** (the
//! contribution, in `sb-core`), **Scalable TCC**, **SEQ-PRO** and **BulkSC**
//! (baselines, in `sb-baselines`). All four are message-driven state
//! machines over the same machine: cores that request chunk commits, and
//! per-tile directory modules (plus, for BulkSC, a central arbiter).
//!
//! This crate defines the seam between a protocol and its host:
//!
//! * [`CommitProtocol`] — the trait every protocol implements. A protocol
//!   never touches the network or the clock directly; it consumes delivered
//!   messages and pushes [`Command`]s into an [`Outbox`] that the host
//!   executes (send a message, report commit success/failure, issue a bulk
//!   invalidation, update directory state, emit a statistics event).
//! * [`MachineView`] — the read-only machine state a protocol may consult
//!   synchronously (current time, sharer lookup by signature expansion).
//! * [`ProtoEvent`] — statistics events (group formation, queue depth)
//!   that the figure collectors aggregate.
//! * [`Fabric`] — a deterministic miniature host with uniform link latency,
//!   used to unit- and property-test protocols without the full simulator.
//!
//! Two hosts exist: [`Fabric`] here, and the full-system simulator in
//! `sb-sim` (real torus latencies, caches, workloads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod choice;
mod command;
mod fabric;
mod flow;
mod kind;
mod protocol;
mod view;

pub use choice::{AddrFootprint, ChoiceMeta};
pub use command::{Command, Endpoint, Outbox, ProtoEvent};
pub use fabric::{Fabric, FabricConfig, FabricReport, Outcome};
pub use flow::FlowId;
pub use kind::ProtocolKind;
pub use protocol::{AbortedCommit, BulkInvAck, CommitProtocol};
pub use view::MachineView;
