//! Independence metadata for the bounded-interleaving explorer.
//!
//! `sb-check explore` enumerates the orders in which same-cycle events
//! may be dispatched. Two events *commute* (swapping them yields an
//! equivalent execution) when the resources their handlers may touch are
//! disjoint; the explorer then only needs one of the two orders. Each
//! schedulable event describes its resource footprint with a
//! [`ChoiceMeta`]: the tiles whose directory/port state the handler may
//! read or write, the address footprint it may test signatures against,
//! and the core whose private state it may mutate. The footprint must be
//! a *superset* of what the handler actually touches — over-approximating
//! costs pruning, under-approximating costs soundness.
//!
//! Protocols report footprints for their wire messages through
//! [`CommitProtocol::msg_meta`](crate::CommitProtocol::msg_meta); the
//! default is [`ChoiceMeta::global`], which commutes with nothing and is
//! therefore always sound.

use sb_chunks::ChunkTag;
use sb_mem::TileSet;
use sb_sigs::SigHandle;

/// Address footprint of one schedulable event.
#[derive(Clone, Debug, Default)]
pub enum AddrFootprint {
    /// No addressable state touched.
    #[default]
    None,
    /// A single cache line.
    Line(u64),
    /// An address signature (the handler may test or expand it).
    Sig(SigHandle),
}

impl AddrFootprint {
    /// Whether two footprints may name a common line. Signatures are
    /// compared by intersection, so aliasing counts as overlap — exactly
    /// the conservative direction.
    pub fn overlaps(&self, other: &AddrFootprint) -> bool {
        match (self, other) {
            (AddrFootprint::None, _) | (_, AddrFootprint::None) => false,
            (AddrFootprint::Line(a), AddrFootprint::Line(b)) => a == b,
            (AddrFootprint::Line(l), AddrFootprint::Sig(s))
            | (AddrFootprint::Sig(s), AddrFootprint::Line(l)) => s.as_signature().test(*l),
            (AddrFootprint::Sig(a), AddrFootprint::Sig(b)) => {
                a.as_signature().intersects(b.as_signature())
            }
        }
    }
}

/// Resource footprint of one schedulable event (see the module docs).
#[derive(Clone, Debug)]
pub struct ChoiceMeta {
    /// Short human label, used by schedule dumps ("grab", "read@dir", …).
    pub label: &'static str,
    /// The chunk the event is about, if any (diagnostics only).
    pub tag: Option<ChunkTag>,
    /// The handler may touch state not captured by the other fields
    /// (e.g. a global arbiter or commit order). Commutes with nothing.
    pub global: bool,
    /// Tiles whose directory state or network injection port the handler
    /// may touch. Inline-small for ≤ 64 tiles and heap-spilled beyond, so
    /// footprints stay exact at any machine size. Ignored when
    /// [`global`](Self::global) is set (global commutes with nothing).
    pub tiles: TileSet,
    /// Addresses the handler may read.
    pub read: AddrFootprint,
    /// Addresses the handler may write or invalidate.
    pub write: AddrFootprint,
    /// The core whose private state (chunk window, caches) the handler
    /// runs against. Two events at the same core never commute.
    pub core: Option<u16>,
}

impl ChoiceMeta {
    /// A maximally conservative footprint: touches everything, commutes
    /// with nothing. Always sound.
    pub fn global(label: &'static str) -> Self {
        ChoiceMeta {
            label,
            tag: None,
            global: true,
            tiles: TileSet::empty(),
            read: AddrFootprint::None,
            write: AddrFootprint::None,
            core: None,
        }
    }

    /// A footprint confined to one set of tiles.
    pub fn at_tiles(label: &'static str, tiles: TileSet) -> Self {
        ChoiceMeta {
            label,
            tag: None,
            global: false,
            tiles,
            read: AddrFootprint::None,
            write: AddrFootprint::None,
            core: None,
        }
    }

    /// Builder: records the chunk tag.
    pub fn with_tag(mut self, tag: ChunkTag) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Builder: records the read footprint.
    pub fn reads(mut self, fp: AddrFootprint) -> Self {
        self.read = fp;
        self
    }

    /// Builder: records the write footprint.
    pub fn writes(mut self, fp: AddrFootprint) -> Self {
        self.write = fp;
        self
    }

    /// Builder: records the owning core.
    pub fn at_core(mut self, core: u16) -> Self {
        self.core = Some(core);
        self
    }

    /// Whether two same-cycle events commute: neither is global, their
    /// tile sets are disjoint, they run at different cores (or at no
    /// core), and their address footprints obey the usual data-race rule
    /// (write/write and read/write overlap conflict; read/read does not).
    pub fn independent(&self, other: &ChoiceMeta) -> bool {
        if self.global || other.global {
            return false;
        }
        if self.tiles.intersects(&other.tiles) {
            return false;
        }
        if let (Some(a), Some(b)) = (self.core, other.core) {
            if a == b {
                return false;
            }
        }
        !(self.write.overlaps(&other.write)
            || self.write.overlaps(&other.read)
            || self.read.overlaps(&other.write))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_sigs::SignatureConfig;

    fn sig_of(lines: &[u64]) -> SigHandle {
        let mut h = SigHandle::empty(SignatureConfig::paper_default());
        for &l in lines {
            h.make_mut().insert(l);
        }
        h
    }

    #[test]
    fn global_commutes_with_nothing() {
        let g = ChoiceMeta::global("msg");
        let local = ChoiceMeta::at_tiles("read@dir", TileSet::single(2));
        assert!(!g.independent(&local));
        assert!(!local.independent(&g));
        assert!(!g.independent(&g.clone()));
    }

    #[test]
    fn disjoint_tiles_commute() {
        let a = ChoiceMeta::at_tiles("read@dir", TileSet::single(0)).reads(AddrFootprint::Line(10));
        let b = ChoiceMeta::at_tiles("read@dir", TileSet::single(1)).reads(AddrFootprint::Line(11));
        assert!(a.independent(&b));
        let c = ChoiceMeta::at_tiles("grab", [1u16, 2].into_iter().collect());
        assert!(a.independent(&c));
        assert!(!b.independent(&c), "tile 1 shared");
    }

    #[test]
    fn same_core_never_commutes() {
        let a = ChoiceMeta::at_tiles("step", TileSet::single(0)).at_core(3);
        let b = ChoiceMeta::at_tiles("outcome", TileSet::single(1)).at_core(3);
        let c = ChoiceMeta::at_tiles("step", TileSet::single(2)).at_core(4);
        assert!(!a.independent(&b));
        assert!(a.independent(&c));
    }

    #[test]
    fn address_overlap_follows_data_race_rule() {
        let w = ChoiceMeta::at_tiles("inv", TileSet::single(0))
            .writes(AddrFootprint::Sig(sig_of(&[7, 9])));
        let r_hit = ChoiceMeta::at_tiles("read", TileSet::single(1)).reads(AddrFootprint::Line(7));
        let r_miss =
            ChoiceMeta::at_tiles("read", TileSet::single(1)).reads(AddrFootprint::Line(1000));
        let r2 = ChoiceMeta::at_tiles("read", TileSet::single(2)).reads(AddrFootprint::Line(7));
        assert!(!w.independent(&r_hit), "write/read overlap");
        assert!(w.independent(&r_miss) || sig_of(&[7, 9]).as_signature().test(1000));
        assert!(r_hit.independent(&r2), "read/read never conflicts");
    }
}
