//! The protocol trait.

use sb_chunks::{ChunkTag, CommitRequest};
use sb_mem::{CoreId, DirId, DirSet, LineAddr};

use crate::choice::ChoiceMeta;
use crate::command::{Endpoint, Outbox};
use crate::kind::ProtocolKind;
use crate::view::MachineView;

/// Information piggy-backed on a `bulk inv ack` when the acking processor
/// had to squash a chunk it had already sent out for commit — the *commit
/// recall* of §3.3/§3.4 (Optimistic Commit Initiation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbortedCommit {
    /// The squashed chunk whose in-flight commit must be cancelled.
    pub tag: ChunkTag,
    /// The failed chunk's directory vector, so the winning group's leader
    /// can compute the Collision module (`Dir ID` in Table 1) as the
    /// lowest-numbered module common to both groups.
    pub g_vec: DirSet,
}

/// A `bulk inv ack` delivered to the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BulkInvAck {
    /// The directory the invalidation came from (the group leader in
    /// ScalableBulk); the ack has arrived back there.
    pub dir: DirId,
    /// The sharer processor acknowledging.
    pub from: CoreId,
    /// The committing chunk whose invalidation is acknowledged.
    pub tag: ChunkTag,
    /// Present iff the sharer squashed a chunk it had already sent out for
    /// commit (commit recall piggy-back).
    pub aborted: Option<AbortedCommit>,
}

/// A chunk-commit coherence protocol.
///
/// Protocols are pure message-driven state machines: the host calls
/// [`CommitProtocol::start_commit`] when a core finishes a chunk, delivers
/// protocol-internal messages via [`CommitProtocol::deliver`], and reports
/// bulk-invalidation acknowledgements via
/// [`CommitProtocol::bulk_inv_acked`]. The protocol responds by pushing
/// [`Command`](crate::Command)s.
///
/// Hosts guarantee:
///
/// * messages between the same (src, dst) pair are *not* reordered
///   arbitrarily — they arrive at their computed network times, which may
///   interleave across pairs (the protocols must tolerate the `&` orderings
///   of Appendix A);
/// * `start_commit` is called at most once per chunk tag at a time; on
///   commit failure the host backs off and calls `start_commit` again with
///   the same request (same tag — the chunk was not squashed);
/// * after a bulk invalidation squashes a chunk, the host never retries
///   that tag (the re-executed chunk gets a fresh tag).
pub trait CommitProtocol {
    /// The protocol's internal message type.
    type Msg: Clone + std::fmt::Debug;

    /// Which of the four protocols this is.
    fn kind(&self) -> ProtocolKind;

    /// Core `req.tag.core()` requests the commit of a finished chunk.
    fn start_commit(
        &mut self,
        view: &dyn MachineView,
        out: &mut Outbox<Self::Msg>,
        req: CommitRequest,
    );

    /// A protocol-internal message arrives at actor `dst`.
    fn deliver(
        &mut self,
        view: &dyn MachineView,
        out: &mut Outbox<Self::Msg>,
        dst: Endpoint,
        msg: Self::Msg,
    );

    /// A `bulk inv ack` arrived back at the issuing directory.
    fn bulk_inv_acked(
        &mut self,
        view: &dyn MachineView,
        out: &mut Outbox<Self::Msg>,
        ack: BulkInvAck,
    );

    /// Whether a load of `line` arriving at directory `dir` must be nacked
    /// because it collides with a committing chunk (§3.1). The host retries
    /// nacked reads after a backoff.
    fn read_blocked(&self, _dir: DirId, _line: LineAddr) -> bool {
        false
    }

    /// Number of chunks this protocol currently has in some stage of
    /// commit processing (diagnostics).
    fn in_flight(&self) -> usize;

    /// Whether a core may *hold* a bulk invalidation that hits its
    /// in-flight commit until that commit resolves (the conservative,
    /// non-OCI behaviour of Figure 4(c)).
    ///
    /// This is a ScalableBulk mechanism: SB's per-directory group
    /// formation guarantees the held core's own commit still resolves
    /// (succeeds or fails) without the withheld ack, at which point the
    /// held invalidation is processed. Protocols that serialize commits
    /// through a *global* order (TCC's TID stream, SEQ/SEQ-TS service
    /// order, BulkSC's arbiter) must not allow holding: the earlier
    /// chunk in that order has already won, and withholding its ack
    /// while waiting for one's own later turn is a circular wait — the
    /// directory cannot finish the winner's turn without the ack, and
    /// the holder's turn never comes. (Found by the `sb-check` fuzzer
    /// as a machine deadlock under TCC with `oci = false`.)
    fn supports_held_invs(&self) -> bool {
        false
    }

    /// One-line internal-state summary for livelock diagnostics.
    fn debug_state(&self) -> String {
        String::new()
    }

    /// Short static label for a protocol message, used by the causal
    /// flow tracer to name message flows ("grab", "occupy", ...). Purely
    /// observational — never consulted for simulated behaviour.
    fn msg_label(_msg: &Self::Msg) -> &'static str {
        "msg"
    }

    /// The committing chunk a protocol message belongs to, if the
    /// message carries one (arbitration-slot style messages do not).
    /// Purely observational, like [`CommitProtocol::msg_label`].
    fn msg_tag(_msg: &Self::Msg) -> Option<ChunkTag> {
        None
    }

    /// Resource footprint of a wire message delivered at `dst`, for the
    /// bounded-interleaving explorer's independence test (see
    /// [`ChoiceMeta`]). Never consulted for simulated behaviour.
    ///
    /// The default treats every message as touching global protocol
    /// state — always sound, no pruning. Protocols whose commit
    /// bookkeeping is partitioned per directory module (ScalableBulk)
    /// override this with per-tile footprints.
    fn msg_meta(&self, _dst: Endpoint, msg: &Self::Msg) -> ChoiceMeta {
        ChoiceMeta::global(Self::msg_label(msg))
    }

    /// Whether commit bookkeeping reached through `start_commit` /
    /// `bulk_inv_acked` is partitioned by directory module (`true` for
    /// ScalableBulk's per-tile CSTs) or serialized through shared global
    /// state (TCC's TID stream, SEQ/SEQ-TS service order, BulkSC's
    /// arbiter). Drives the explorer's independence test for those
    /// up-calls; like [`CommitProtocol::msg_meta`], never consulted for
    /// simulated behaviour.
    fn per_dir_commit_state(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Command;
    use sb_chunks::ActiveChunk;
    use sb_engine::Cycle;
    use sb_mem::CoreSet;
    use sb_sigs::{Signature, SignatureConfig};

    /// A trivial protocol that instantly grants every commit; exercises the
    /// trait surface and serves as the "null protocol" for host tests.
    struct InstantCommit {
        in_flight: usize,
    }

    impl CommitProtocol for InstantCommit {
        type Msg = ();

        fn kind(&self) -> ProtocolKind {
            ProtocolKind::BulkSc
        }

        fn start_commit(
            &mut self,
            _view: &dyn MachineView,
            out: &mut Outbox<()>,
            req: CommitRequest,
        ) {
            out.commit_success(req.tag.core(), req.tag, DirId(0));
        }

        fn deliver(
            &mut self,
            _view: &dyn MachineView,
            _out: &mut Outbox<()>,
            _dst: Endpoint,
            _msg: (),
        ) {
        }

        fn bulk_inv_acked(
            &mut self,
            _view: &dyn MachineView,
            _out: &mut Outbox<()>,
            _ack: BulkInvAck,
        ) {
        }

        fn in_flight(&self) -> usize {
            self.in_flight
        }
    }

    struct NullView;
    impl MachineView for NullView {
        fn now(&self) -> Cycle {
            Cycle::ZERO
        }
        fn cores(&self) -> u16 {
            1
        }
        fn dirs(&self) -> u16 {
            1
        }
        fn sharers_matching(&self, _: DirId, _: &Signature, _: CoreId) -> CoreSet {
            CoreSet::empty()
        }
    }

    #[test]
    fn instant_protocol_grants_immediately() {
        let mut p = InstantCommit { in_flight: 0 };
        let mut out = Outbox::new();
        let chunk = ActiveChunk::new(
            ChunkTag::new(CoreId(0), 0),
            SignatureConfig::paper_default(),
        );
        p.start_commit(&NullView, &mut out, chunk.to_commit_request());
        let cmds = out.drain();
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0], Command::CommitSuccess { .. }));
        assert!(!p.read_blocked(DirId(0), LineAddr(0)));
        assert_eq!(p.in_flight(), 0);
        assert_eq!(p.kind(), ProtocolKind::BulkSc);
    }

    #[test]
    fn aborted_commit_carries_gvec() {
        let a = AbortedCommit {
            tag: ChunkTag::new(CoreId(1), 3),
            g_vec: DirSet::single(DirId(2)),
        };
        let ack = BulkInvAck {
            dir: DirId(0),
            from: CoreId(1),
            tag: ChunkTag::new(CoreId(0), 9),
            aborted: Some(a),
        };
        assert_eq!(ack.aborted.unwrap().g_vec.lowest(), Some(DirId(2)));
    }
}
