//! Read-only machine state available to a protocol.

use sb_engine::Cycle;
use sb_mem::{CoreId, CoreSet, DirId};
use sb_sigs::Signature;

/// The machine state a protocol may consult synchronously during an upcall.
///
/// Everything a protocol *changes* goes through
/// [`Command`](crate::Command)s; everything it *reads* comes from here.
/// The sharer lookup is the §3.2.1 computation: each participating
/// directory expands the W signature against its local directory state to
/// find the processors that must be invalidated ("computing the sharer
/// processors is done by all directory controllers in parallel").
pub trait MachineView {
    /// Current simulated time.
    fn now(&self) -> Cycle;

    /// Number of processor cores.
    fn cores(&self) -> u16;

    /// Number of directory modules.
    fn dirs(&self) -> u16;

    /// Directory `dir`'s local `inval_vec` for a committing chunk: the
    /// union of sharers (and dirty owners) of every tracked line matching
    /// `wsig`, excluding the committer itself.
    fn sharers_matching(&self, dir: DirId, wsig: &Signature, committer: CoreId) -> CoreSet;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;

    impl MachineView for Dummy {
        fn now(&self) -> Cycle {
            Cycle(42)
        }
        fn cores(&self) -> u16 {
            4
        }
        fn dirs(&self) -> u16 {
            4
        }
        fn sharers_matching(&self, _d: DirId, _w: &Signature, committer: CoreId) -> CoreSet {
            CoreSet::single(CoreId(0)).without(committer)
        }
    }

    #[test]
    fn trait_is_object_safe_and_usable() {
        let d = Dummy;
        let view: &dyn MachineView = &d;
        assert_eq!(view.now(), Cycle(42));
        assert_eq!(view.cores(), 4);
        let w = Signature::new(sb_sigs::SignatureConfig::paper_default());
        assert!(view.sharers_matching(DirId(0), &w, CoreId(0)).is_empty());
        assert!(!view.sharers_matching(DirId(0), &w, CoreId(1)).is_empty());
    }
}
