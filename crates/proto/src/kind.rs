//! Protocol identification (Table 3 of the paper).

use std::fmt;
use std::str::FromStr;

/// The four simulated cache-coherence protocols (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The protocol proposed by the paper.
    ScalableBulk,
    /// Scalable TCC (Chafi et al., HPCA 2007).
    Tcc,
    /// SEQ-PRO from SRC (Pugsley et al., PACT 2008).
    Seq,
    /// BulkSC (Ceze et al., ISCA 2007) with the arbiter in the chip centre.
    BulkSc,
    /// SEQ-TS, SRC's parallel-occupation-with-stealing variant (§2.1 of
    /// the ScalableBulk paper). Implemented as an extension; not part of
    /// Table 3's comparison set ([`ProtocolKind::ALL`]).
    SeqTs,
}

impl ProtocolKind {
    /// All four protocols, in the order the paper's figures present them.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::ScalableBulk,
        ProtocolKind::Tcc,
        ProtocolKind::Seq,
        ProtocolKind::BulkSc,
    ];

    /// The paper's name for the protocol.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::ScalableBulk => "ScalableBulk",
            ProtocolKind::Tcc => "TCC",
            ProtocolKind::Seq => "SEQ",
            ProtocolKind::BulkSc => "BulkSC",
            ProtocolKind::SeqTs => "SEQ-TS",
        }
    }

    /// The single-letter key used in Figures 18–19 (S, T, Q, B).
    pub fn letter(self) -> char {
        match self {
            ProtocolKind::ScalableBulk => 'S',
            ProtocolKind::Tcc => 'T',
            ProtocolKind::Seq => 'Q',
            ProtocolKind::BulkSc => 'B',
            ProtocolKind::SeqTs => 'X',
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error parsing a [`ProtocolKind`] from a string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseProtocolError(String);

impl fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown protocol {:?}; expected one of scalablebulk, tcc, seq, bulksc",
            self.0
        )
    }
}

impl std::error::Error for ParseProtocolError {}

impl FromStr for ProtocolKind {
    type Err = ParseProtocolError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalablebulk" | "sb" | "s" => Ok(ProtocolKind::ScalableBulk),
            "tcc" | "t" => Ok(ProtocolKind::Tcc),
            "seq" | "seq-pro" | "q" => Ok(ProtocolKind::Seq),
            "seqts" | "seq-ts" | "x" => Ok(ProtocolKind::SeqTs),
            "bulksc" | "b" => Ok(ProtocolKind::BulkSc),
            other => Err(ParseProtocolError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table3() {
        assert_eq!(ProtocolKind::ScalableBulk.label(), "ScalableBulk");
        assert_eq!(ProtocolKind::Tcc.label(), "TCC");
        assert_eq!(ProtocolKind::Seq.label(), "SEQ");
        assert_eq!(ProtocolKind::BulkSc.label(), "BulkSC");
    }

    #[test]
    fn letters_match_fig18() {
        let letters: String = ProtocolKind::ALL.iter().map(|p| p.letter()).collect();
        assert_eq!(letters, "STQB");
    }

    #[test]
    fn parse_roundtrip() {
        for p in ProtocolKind::ALL {
            assert_eq!(p.label().parse::<ProtocolKind>().unwrap(), p);
        }
        assert_eq!(
            "seq-pro".parse::<ProtocolKind>().unwrap(),
            ProtocolKind::Seq
        );
        assert_eq!(
            "SEQ-TS".parse::<ProtocolKind>().unwrap(),
            ProtocolKind::SeqTs
        );
        assert!(
            !ProtocolKind::ALL.contains(&ProtocolKind::SeqTs),
            "Table 3 has four protocols"
        );
        assert!("mesi".parse::<ProtocolKind>().is_err());
        let err = "mesi".parse::<ProtocolKind>().unwrap_err();
        assert!(err.to_string().contains("mesi"));
    }
}
