//! A deterministic miniature host for protocol-level testing.
//!
//! The fabric wires a [`CommitProtocol`] to a toy machine: uniform link
//! latency between any two actors, per-directory sharer state, and a core
//! model that does nothing but issue scripted commit requests and react to
//! bulk invalidations. It is the harness behind `sb-core`'s protocol unit
//! and property tests (group-formation safety and liveness, OCI recall
//! paths) — scenarios that would be awkward to stage through the full
//! simulator.

use std::collections::HashMap;

use sb_chunks::{ChunkTag, CommitRequest};
use sb_engine::{Cycle, EventQueue};
use sb_mem::{CoreId, CoreSet, DirId, DirectoryState, LineAddr};
use sb_sigs::{SigHandle, Signature};

use crate::command::{Command, Endpoint, ProtoEvent};
use crate::protocol::{AbortedCommit, BulkInvAck, CommitProtocol};
use crate::view::MachineView;

/// Fabric parameters.
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    /// Number of cores.
    pub cores: u16,
    /// Number of directory modules.
    pub dirs: u16,
    /// Uniform actor-to-actor message latency, cycles.
    pub link_latency: u64,
    /// Processing delay at a core before it acks a bulk invalidation.
    pub ack_delay: u64,
    /// Backoff before a failed commit is retried.
    pub retry_backoff: u64,
    /// Retries before a commit is abandoned (tests of liveness use a high
    /// value; the paper's protocol should never need it).
    pub max_retries: u32,
}

impl FabricConfig {
    /// A small 8-core, 8-directory machine with 10-cycle links.
    pub fn small() -> Self {
        FabricConfig {
            cores: 8,
            dirs: 8,
            link_latency: 10,
            ack_delay: 2,
            retry_backoff: 50,
            max_retries: 100,
        }
    }
}

/// Terminal state of one scripted commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The chunk committed; `latency` is from the *first* commit request to
    /// the commit-success arrival at the core.
    Committed {
        /// The chunk.
        tag: ChunkTag,
        /// First-request-to-success latency in cycles.
        latency: u64,
        /// Number of failed attempts before success.
        retries: u32,
    },
    /// The chunk was squashed by an incoming bulk invalidation while its
    /// commit was in flight (the OCI path: ack carried a commit recall).
    Squashed {
        /// The chunk.
        tag: ChunkTag,
    },
    /// Retry budget exhausted (indicates starvation — a protocol bug or an
    /// intentionally adversarial test).
    GaveUp {
        /// The chunk.
        tag: ChunkTag,
    },
}

impl Outcome {
    /// The chunk this outcome is about.
    pub fn tag(&self) -> ChunkTag {
        match *self {
            Outcome::Committed { tag, .. }
            | Outcome::Squashed { tag }
            | Outcome::GaveUp { tag } => tag,
        }
    }

    /// Whether the chunk committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, Outcome::Committed { .. })
    }
}

/// What the fabric observed during a run.
#[derive(Clone, Debug, Default)]
pub struct FabricReport {
    /// Terminal outcomes in completion order.
    pub outcomes: Vec<Outcome>,
    /// Statistics events with timestamps.
    pub events: Vec<(Cycle, ProtoEvent)>,
    /// Whether the run ended because the step limit was hit (suggests
    /// livelock) rather than by draining all events.
    pub hit_step_limit: bool,
    /// Final simulated time.
    pub finished_at: Cycle,
}

impl FabricReport {
    /// Outcomes that committed.
    pub fn committed(&self) -> Vec<ChunkTag> {
        self.outcomes
            .iter()
            .filter(|o| o.is_committed())
            .map(|o| o.tag())
            .collect()
    }

    /// The outcome for `tag`, if terminal.
    pub fn outcome_of(&self, tag: ChunkTag) -> Option<Outcome> {
        self.outcomes.iter().copied().find(|o| o.tag() == tag)
    }

    /// Count of events matching a predicate.
    pub fn count_events<F: Fn(&ProtoEvent) -> bool>(&self, f: F) -> usize {
        self.events.iter().filter(|(_, e)| f(e)).count()
    }
}

/// Per-core in-flight scripted commit.
#[derive(Clone, Debug)]
struct PendingCommit {
    req: CommitRequest,
    first_requested: Cycle,
    retries: u32,
}

enum Ev<M> {
    Deliver {
        dst: Endpoint,
        msg: M,
    },
    StartCommit {
        req: CommitRequest,
    },
    BulkInvAtCore {
        from: DirId,
        to: CoreId,
        tag: ChunkTag,
        wsig: SigHandle,
    },
    AckAtDir {
        ack: BulkInvAck,
    },
    SuccessAtCore {
        core: CoreId,
        tag: ChunkTag,
    },
    FailureAtCore {
        core: CoreId,
        tag: ChunkTag,
    },
}

/// The machine-state part of the fabric (separated so the host loop can
/// borrow it immutably for protocol upcalls while mutating the rest).
#[derive(Debug)]
struct FabricView {
    now: Cycle,
    cores: u16,
    dirs: u16,
    dirstate: Vec<DirectoryState>,
}

impl MachineView for FabricView {
    fn now(&self) -> Cycle {
        self.now
    }
    fn cores(&self) -> u16 {
        self.cores
    }
    fn dirs(&self) -> u16 {
        self.dirs
    }
    fn sharers_matching(&self, dir: DirId, wsig: &Signature, committer: CoreId) -> CoreSet {
        self.dirstate[dir.idx()].sharers_matching(wsig, committer)
    }
}

/// The deterministic test host. See the module docs.
///
/// # Examples
///
/// See the integration tests of `sb-core`, which drive ScalableBulk group
/// formation through a `Fabric`.
pub struct Fabric<M> {
    cfg: FabricConfig,
    view: FabricView,
    queue: EventQueue<Ev<M>>,
    pending: HashMap<CoreId, PendingCommit>,
    /// Tags squashed by a bulk invalidation; never retried (the host
    /// guarantee of [`CommitProtocol`]).
    dead: std::collections::HashSet<ChunkTag>,
    report: FabricReport,
}

impl<M: Clone + std::fmt::Debug> Fabric<M> {
    /// Creates an idle fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        Fabric {
            view: FabricView {
                now: Cycle::ZERO,
                cores: cfg.cores,
                dirs: cfg.dirs,
                dirstate: (0..cfg.dirs).map(|_| DirectoryState::new()).collect(),
            },
            cfg,
            queue: EventQueue::new(),
            pending: HashMap::new(),
            dead: std::collections::HashSet::new(),
            report: FabricReport::default(),
        }
    }

    /// Seeds directory state: `core` is a sharer of `line` homed at `dir`.
    pub fn seed_sharer(&mut self, dir: DirId, line: LineAddr, core: CoreId) {
        self.view.dirstate[dir.idx()].record_read(line, core);
    }

    /// Read-only access to a directory's sharer state.
    pub fn dir_state(&self, dir: DirId) -> &DirectoryState {
        &self.view.dirstate[dir.idx()]
    }

    /// Schedules a commit request to be issued at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if the core already has a scheduled/in-flight commit at `at`
    /// (the fabric models one outstanding commit per core).
    pub fn schedule_commit(&mut self, at: Cycle, req: CommitRequest) {
        self.queue.push(at, Ev::StartCommit { req });
    }

    /// Runs the event loop until quiescence or `max_steps` events.
    /// Returns the report (also retrievable via [`Fabric::report`]).
    pub fn run<P>(&mut self, proto: &mut P, max_steps: usize) -> FabricReport
    where
        P: CommitProtocol<Msg = M>,
    {
        let mut steps = 0;
        while let Some((at, ev)) = self.queue.pop() {
            steps += 1;
            if steps > max_steps {
                self.report.hit_step_limit = true;
                break;
            }
            debug_assert!(at >= self.view.now, "time went backwards");
            self.view.now = at;
            let mut out = crate::command::Outbox::new();
            match ev {
                Ev::Deliver { dst, msg } => proto.deliver(&self.view, &mut out, dst, msg),
                Ev::StartCommit { req } => {
                    if self.dead.contains(&req.tag) {
                        continue; // squashed while a retry was queued
                    }
                    let core = req.tag.core();
                    let entry = self.pending.entry(core).or_insert_with(|| PendingCommit {
                        req: req.clone(),
                        first_requested: at,
                        retries: 0,
                    });
                    // A retry reuses the stored first_requested/retries.
                    entry.req = req.clone();
                    proto.start_commit(&self.view, &mut out, req);
                }
                Ev::BulkInvAtCore {
                    from,
                    to,
                    tag,
                    wsig,
                } => {
                    // Core-side: does this invalidation squash an in-flight
                    // commit of ours? (OCI: consume it, squash, recall.)
                    let mut aborted = None;
                    if let Some(p) = self.pending.get(&to) {
                        let conflicts =
                            wsig.intersects(&p.req.rsig) || wsig.intersects(&p.req.wsig);
                        if conflicts && p.req.tag != tag {
                            aborted = Some(AbortedCommit {
                                tag: p.req.tag,
                                g_vec: p.req.g_vec.clone(),
                            });
                            self.report
                                .outcomes
                                .push(Outcome::Squashed { tag: p.req.tag });
                            self.dead.insert(p.req.tag);
                            self.pending.remove(&to);
                        }
                    }
                    let ack_at = at + self.cfg.ack_delay + self.cfg.link_latency;
                    self.queue.push(
                        ack_at,
                        Ev::AckAtDir {
                            ack: BulkInvAck {
                                dir: from,
                                from: to,
                                tag,
                                aborted,
                            },
                        },
                    );
                    // Also drop the sharer from every directory (cache
                    // invalidation effect), conservatively at all dirs.
                    for d in &mut self.view.dirstate {
                        let lines: Vec<LineAddr> = d
                            .tracked_lines()
                            .filter(|l| wsig.test(l.as_u64()))
                            .collect();
                        for l in lines {
                            d.drop_sharer(l, to);
                        }
                    }
                }
                Ev::AckAtDir { ack } => proto.bulk_inv_acked(&self.view, &mut out, ack),
                Ev::SuccessAtCore { core, tag } => {
                    if let Some(p) = self.pending.get(&core) {
                        if p.req.tag == tag {
                            let p = self.pending.remove(&core).expect("just found");
                            self.report.outcomes.push(Outcome::Committed {
                                tag,
                                latency: (at - p.first_requested).as_u64(),
                                retries: p.retries,
                            });
                        }
                    }
                }
                Ev::FailureAtCore { core, tag } => {
                    // OCI: a failure for an already-squashed chunk is
                    // discarded (the pending entry is gone).
                    if let Some(p) = self.pending.get_mut(&core) {
                        if p.req.tag == tag {
                            p.retries += 1;
                            if p.retries > self.cfg.max_retries {
                                self.pending.remove(&core);
                                self.report.outcomes.push(Outcome::GaveUp { tag });
                            } else {
                                let req = p.req.clone();
                                self.queue
                                    .push(at + self.cfg.retry_backoff, Ev::StartCommit { req });
                            }
                        }
                    }
                }
            }
            self.execute(out.drain());
        }
        self.report.finished_at = self.view.now;
        self.report.clone()
    }

    fn execute(&mut self, cmds: Vec<Command<M>>) {
        let now = self.view.now;
        let lat = self.cfg.link_latency;
        for cmd in cmds {
            match cmd {
                Command::Send { dst, msg, .. } => {
                    self.queue.push(now + lat, Ev::Deliver { dst, msg });
                }
                Command::After { delay, dst, msg } => {
                    self.queue.push(now + delay, Ev::Deliver { dst, msg });
                }
                Command::CommitSuccess { core, tag, .. } => {
                    self.queue.push(now + lat, Ev::SuccessAtCore { core, tag });
                }
                Command::CommitFailure { core, tag, .. } => {
                    self.queue.push(now + lat, Ev::FailureAtCore { core, tag });
                }
                Command::BulkInv {
                    from,
                    to,
                    tag,
                    wsig,
                    size: _,
                } => {
                    self.queue.push(
                        now + lat,
                        Ev::BulkInvAtCore {
                            from,
                            to,
                            tag,
                            wsig,
                        },
                    );
                }
                Command::ApplyCommit {
                    dir,
                    wsig,
                    committer,
                } => {
                    self.view.dirstate[dir.idx()].apply_commit(&wsig, committer);
                }
                Command::Event(ev) => self.report.events.push((now, ev)),
            }
        }
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &FabricReport {
        &self.report
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.view.now
    }

    /// The configuration.
    pub fn config(&self) -> FabricConfig {
        self.cfg
    }
}

impl<M> std::fmt::Debug for Fabric<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("now", &self.view.now)
            .field("pending", &self.pending.len())
            .field("outcomes", &self.report.outcomes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Outbox;
    use crate::kind::ProtocolKind;
    use sb_chunks::ActiveChunk;
    use sb_sigs::SignatureConfig;

    /// A protocol that, on commit request, sends itself a message through
    /// the network and only then grants — exercising Deliver plumbing.
    #[derive(Default)]
    struct TwoPhase {
        in_flight: usize,
    }

    #[derive(Clone, Debug)]
    struct Grant(ChunkTag);

    impl CommitProtocol for TwoPhase {
        type Msg = Grant;

        fn kind(&self) -> ProtocolKind {
            ProtocolKind::BulkSc
        }

        fn start_commit(
            &mut self,
            _v: &dyn MachineView,
            out: &mut Outbox<Grant>,
            req: CommitRequest,
        ) {
            self.in_flight += 1;
            out.send(
                Endpoint::Core(req.tag.core()),
                Endpoint::Dir(DirId(0)),
                sb_net::MsgSize::SignaturePair,
                sb_net::TrafficClass::LargeCMessage,
                Grant(req.tag),
            );
        }

        fn deliver(
            &mut self,
            _v: &dyn MachineView,
            out: &mut Outbox<Grant>,
            dst: Endpoint,
            msg: Grant,
        ) {
            assert_eq!(dst, Endpoint::Dir(DirId(0)));
            self.in_flight -= 1;
            out.commit_success(msg.0.core(), msg.0, DirId(0));
        }

        fn bulk_inv_acked(
            &mut self,
            _v: &dyn MachineView,
            _out: &mut Outbox<Grant>,
            _ack: BulkInvAck,
        ) {
        }

        fn in_flight(&self) -> usize {
            self.in_flight
        }
    }

    fn request(core: u16, seq: u64) -> CommitRequest {
        let mut c = ActiveChunk::new(
            ChunkTag::new(CoreId(core), seq),
            SignatureConfig::paper_default(),
        );
        c.record_write(LineAddr(core as u64 * 100), DirId(0));
        c.to_commit_request()
    }

    #[test]
    fn two_phase_commit_completes_with_correct_latency() {
        let mut f: Fabric<Grant> = Fabric::new(FabricConfig::small());
        let req = request(1, 0);
        let tag = req.tag;
        f.schedule_commit(Cycle(100), req);
        let mut p = TwoPhase::default();
        let report = f.run(&mut p, 10_000);
        assert!(!report.hit_step_limit);
        assert_eq!(report.committed(), vec![tag]);
        match report.outcome_of(tag).unwrap() {
            Outcome::Committed {
                latency, retries, ..
            } => {
                // request->dir (10) + success->core (10) = 20.
                assert_eq!(latency, 20);
                assert_eq!(retries, 0);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn concurrent_commits_from_different_cores_all_complete() {
        let mut f: Fabric<Grant> = Fabric::new(FabricConfig::small());
        let mut tags = Vec::new();
        for core in 0..8u16 {
            let req = request(core, 0);
            tags.push(req.tag);
            f.schedule_commit(Cycle(core as u64), req);
        }
        let mut p = TwoPhase::default();
        let report = f.run(&mut p, 10_000);
        let mut committed = report.committed();
        committed.sort();
        tags.sort();
        assert_eq!(committed, tags);
    }

    #[test]
    fn seeded_sharers_visible_through_view() {
        let mut f: Fabric<Grant> = Fabric::new(FabricConfig::small());
        f.seed_sharer(DirId(2), LineAddr(5), CoreId(3));
        let w = Signature::from_lines(SignatureConfig::paper_default(), [5u64]);
        let sharers = f.view.sharers_matching(DirId(2), &w, CoreId(0));
        assert!(sharers.contains(CoreId(3)));
        // Committer excluded.
        let sharers = f.view.sharers_matching(DirId(2), &w, CoreId(3));
        assert!(sharers.is_empty());
    }

    #[test]
    fn debug_impl_nonempty() {
        let f: Fabric<Grant> = Fabric::new(FabricConfig::small());
        assert!(format!("{f:?}").contains("Fabric"));
    }
}
