//! Lookahead safety for the conservative parallel scheduler.
//!
//! The domain-partitioned executor in `sb-sim` lets one domain run
//! `NetworkConfig::lookahead_bound(min_inter_domain_hops)` cycles past
//! the rest of the machine. That is only sound if *no* cross-domain
//! message — under injection-port contention, multi-flit serialization,
//! and the seeded timing adversary — can ever arrive sooner than the
//! bound promises. These tests hammer that invariant with random torus
//! shapes, random domain assignments, and random message streams.

use proptest::prelude::*;
use sb_engine::Cycle;
use sb_net::{MsgSize, Network, NetworkConfig, NodeId, PerturbationConfig, Topology};

/// Every fabric the scheduler can run on. The lookahead invariant must
/// hold on all of them — a concentrated mesh can even have *zero*-hop
/// cross-domain pairs (co-routed tiles), where the bound degenerates to
/// the fixed overhead alone.
const FABRICS: [&str; 3] = ["torus", "cmesh", "xtorus"];

const SIZES: [MsgSize; 4] = [
    MsgSize::Small,
    MsgSize::Line,
    MsgSize::Signature,
    MsgSize::SignaturePair,
];

fn class_for(i: u64) -> sb_net::TrafficClass {
    use sb_net::TrafficClass::*;
    match i % 5 {
        0 => SmallCMessage,
        1 => LargeCMessage,
        2 => MemRd,
        3 => RemoteShRd,
        _ => RemoteDirtyRd,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For random power-of-two machines on every fabric, random domain
    /// assignments, and random perturbed message streams, no
    /// cross-domain delivery's end-to-end latency (queue wait + wire +
    /// perturbation) ever drops below the computed inter-domain
    /// lookahead bound.
    #[test]
    fn cross_domain_latency_never_beats_lookahead(
        tiles_log in 0u32..7,            // 1..=64 tiles
        fabric_pick in 0usize..3,
        domains in 1usize..5,
        seed in 0u64..1 << 32,
        msgs in proptest::collection::vec((any::<u64>(), any::<u64>(), 0u64..4, 0u64..8), 1..120),
    ) {
        let tiles = 1u16 << tiles_log;
        let topo = Topology::by_name(FABRICS[fabric_pick], tiles).expect("known fabric");
        let mut cfg = NetworkConfig::paper_default(tiles);
        cfg.topology = topo;
        // Vary the timing parameters too: the bound must be derived from
        // the config, not from the paper constants.
        cfg.link_latency = 1 + seed % 11;
        cfg.fixed_overhead = seed % 5;

        // Random domain assignment (round-robin with a random stride so
        // both contiguous-ish and interleaved partitions appear).
        let stride = 1 + (seed >> 8) as usize % 3;
        let assignment: Vec<usize> = (0..tiles as usize)
            .map(|t| (t * stride) % domains)
            .collect();
        let min_hops = topo.min_inter_domain_hops(&assignment);

        let mut net = Network::with_perturbation(cfg, PerturbationConfig::from_seed(seed));
        let mut now = Cycle::ZERO;
        for (a, b, sz, gap) in msgs {
            now += gap;
            let src = NodeId((a % tiles as u64) as u16);
            let dst = NodeId((b % tiles as u64) as u16);
            let (arrive, info) = net.send_info(now, src, dst, SIZES[sz as usize], class_for(a));
            prop_assert!(arrive >= now, "delivery cannot precede the send");
            if assignment[src.idx()] != assignment[dst.idx()] {
                let bound = cfg.lookahead_bound(
                    min_hops.expect("cross-domain pair exists, so min_hops is Some") as u64,
                );
                prop_assert!(
                    (arrive - now).as_u64() >= bound,
                    "cross-domain {src}->{dst} arrived after {} cycles, \
                     below the lookahead bound {bound} (info: {info:?})",
                    (arrive - now).as_u64(),
                );
            }
        }
    }

    /// The bound is exactly the per-config minimum wire time: an
    /// uncontended, unperturbed small message between a *closest*
    /// cross-domain pair achieves it with equality, so the lookahead is
    /// the largest safe window, not merely a safe one.
    #[test]
    fn lookahead_bound_is_tight(
        tiles_log in 1u32..7,
        fabric_pick in 0usize..3,
        domains in 2usize..5,
        stride in 1usize..4,
    ) {
        let tiles = 1u16 << tiles_log;
        let topo = Topology::by_name(FABRICS[fabric_pick], tiles).expect("known fabric");
        let mut cfg = NetworkConfig::paper_default(tiles);
        cfg.topology = topo;
        let assignment: Vec<usize> = (0..tiles as usize)
            .map(|t| (t * stride) % domains)
            .collect();
        let Some(min_hops) = topo.min_inter_domain_hops(&assignment) else {
            // Fewer tiles than domains can still collapse to one domain.
            return;
        };
        // Find a closest cross-domain pair and send one idle message.
        let (a, b) = (0..tiles)
            .flat_map(|a| (0..tiles).map(move |b| (a, b)))
            .find(|&(a, b)| {
                assignment[a as usize] != assignment[b as usize]
                    && topo.hops(NodeId(a), NodeId(b)) == min_hops
            })
            .expect("min_inter_domain_hops returned Some, so a witness pair exists");
        let mut net = Network::new(cfg);
        let arrive = net.send(
            Cycle::ZERO,
            NodeId(a),
            NodeId(b),
            MsgSize::Small,
            sb_net::TrafficClass::SmallCMessage,
        );
        prop_assert_eq!(arrive.as_u64(), cfg.lookahead_bound(min_hops as u64));
    }
}

/// `min_inter_domain_hops` really is the minimum over cross-domain
/// pairs on every fabric: brute-force recomputation agrees on a spread
/// of shapes (including non-powers-of-two, where the torus factors to
/// the nearest square and a cmesh leaves its last router half-full).
#[test]
fn min_inter_domain_hops_matches_brute_force() {
    for fabric in FABRICS {
        for tiles in [1u16, 2, 4, 8, 16, 32, 48, 64] {
            let topo = Topology::by_name(fabric, tiles).expect("known fabric");
            for case in 0..40u32 {
                let mut rng = proptest::rng_for("min_hops_brute", case * 64 + tiles as u32);
                let domains = 1 + rng.below(4) as usize;
                let assignment: Vec<usize> = (0..tiles as usize)
                    .map(|_| rng.below(domains as u64) as usize)
                    .collect();
                let mut brute: Option<u16> = None;
                for a in 0..tiles {
                    for b in 0..tiles {
                        if a != b && assignment[a as usize] != assignment[b as usize] {
                            let h = topo.hops(NodeId(a), NodeId(b));
                            brute = Some(brute.map_or(h, |m| m.min(h)));
                        }
                    }
                }
                assert_eq!(
                    topo.min_inter_domain_hops(&assignment),
                    brute,
                    "{fabric}@{tiles} case {case}"
                );
            }
        }
    }
}
