//! Property tests for the interconnect latency math.
//!
//! Three families: metric properties of torus hop counts (symmetry,
//! identity, triangle inequality, diameter bound), monotonicity of the
//! contention model (adding traffic never makes a later delivery
//! *earlier*), and the Table-2 constants of `paper_default`.

use proptest::prelude::*;
use sb_engine::Cycle;
use sb_net::{
    MsgSize, Network, NetworkConfig, NodeId, PerturbationConfig, Topology, Torus, TrafficClass,
};

const SIZES: [MsgSize; 4] = [
    MsgSize::Small,
    MsgSize::Line,
    MsgSize::Signature,
    MsgSize::SignaturePair,
];

fn class_of(i: u64) -> TrafficClass {
    TrafficClass::ALL[(i % TrafficClass::ALL.len() as u64) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Hop count is a metric on every paper-shaped torus: symmetric, zero
    /// iff equal, triangle inequality, and bounded by the torus diameter
    /// `cols/2 + rows/2`.
    #[test]
    fn torus_hops_form_a_metric(
        tiles_log in 0u32..7,
        picks in (any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let tiles = 1u16 << tiles_log;
        let t = Torus::for_tiles(tiles);
        let n = tiles as u64;
        let (a, b, c) = (
            NodeId((picks.0 % n) as u16),
            NodeId((picks.1 % n) as u16),
            NodeId((picks.2 % n) as u16),
        );
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert_eq!(t.hops(a, a), 0);
        if a != b {
            prop_assert!(t.hops(a, b) > 0);
        }
        prop_assert!(t.hops(a, b) <= t.hops(a, c) + t.hops(c, b), "triangle inequality");
        prop_assert!(t.hops(a, b) <= t.cols() / 2 + t.rows() / 2, "diameter bound");
    }

    /// Contention monotonicity: injecting an extra message from the same
    /// source before a probe never makes the probe arrive *earlier*, and
    /// with contention modelling disabled it has no effect at all.
    #[test]
    fn more_in_flight_traffic_never_speeds_up_a_delivery(
        prefix in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..12),
        probe in (any::<u64>(), any::<u64>(), any::<u64>()),
        extra in (any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let cfg = NetworkConfig::paper_default(16);
        let send = |net: &mut Network, spec: &(u64, u64, u64), src: u16| {
            net.send(
                Cycle(spec.0 % 50),
                NodeId(src),
                NodeId((spec.1 % 16) as u16),
                SIZES[(spec.2 % 4) as usize],
                class_of(spec.2),
            )
        };
        // All traffic leaves node 3, so every message contends for one port.
        let mut without = Network::new(cfg);
        for m in &prefix {
            send(&mut without, m, 3);
        }
        let t_without = send(&mut without, &probe, 3);

        let mut with = Network::new(cfg);
        for m in &prefix {
            send(&mut with, m, 3);
        }
        send(&mut with, &extra, 3);
        let t_with = send(&mut with, &probe, 3);
        prop_assert!(
            t_with >= t_without,
            "extra in-flight message made the probe earlier: {t_with:?} < {t_without:?}"
        );

        // Disabled contention: the extra message must change nothing.
        let mut free = cfg;
        free.model_contention = false;
        let mut a = Network::new(free);
        let mut b = Network::new(free);
        send(&mut b, &extra, 3);
        prop_assert_eq!(send(&mut a, &probe, 3), send(&mut b, &probe, 3));
    }

    /// An uncontended send equals `pure_latency`, which decomposes as
    /// `fixed + hops * link + (flits - 1)` with Table 2's constants.
    #[test]
    fn paper_default_latency_decomposition(
        src in 0u64..64,
        dst in 0u64..64,
        size_pick in 0u64..4,
    ) {
        let cfg = NetworkConfig::paper_default(64);
        prop_assert_eq!(cfg.link_latency, 7, "Table 2: 7-cycle links");
        prop_assert_eq!(cfg.fixed_overhead, 2);
        prop_assert_eq!(cfg.topology, Topology::Torus(Torus::for_tiles(64)));
        prop_assert!(cfg.model_contention);

        let (src, dst) = (NodeId(src as u16), NodeId(dst as u16));
        let size = SIZES[size_pick as usize];
        let mut net = Network::new(cfg);
        let arrival = net.send(Cycle(0), src, dst, size, class_of(size_pick));
        let hops = cfg.topology.hops(src, dst) as u64;
        prop_assert_eq!(
            arrival,
            Cycle(2 + hops * 7 + (size.flits() as u64 - 1)),
            "first send from an idle port pays no queueing"
        );
        prop_assert_eq!(net.pure_latency(src, dst, size), arrival.as_u64());
    }

    /// The timing adversary only ever delays: a perturbed delivery is
    /// never earlier than the unperturbed one for the same traffic.
    #[test]
    fn perturbation_is_delay_only(
        seed in any::<u64>(),
        msgs in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..20),
    ) {
        let cfg = NetworkConfig::paper_default(16);
        let mut plain = Network::new(cfg);
        let mut adv = Network::with_perturbation(cfg, PerturbationConfig::from_seed(seed));
        for (i, m) in msgs.iter().enumerate() {
            let t = Cycle(i as u64 * 11);
            let (src, dst) = (NodeId((m.0 % 16) as u16), NodeId((m.1 % 16) as u16));
            let size = SIZES[(m.2 % 4) as usize];
            let base = plain.send(t, src, dst, size, class_of(m.2));
            let pert = adv.send(t, src, dst, size, class_of(m.2));
            prop_assert!(pert >= base);
        }
    }
}
