//! Latency computation and per-node injection contention.

use sb_engine::Cycle;

use crate::perturb::{Perturbation, PerturbationConfig};
use crate::topology::{NodeId, Topology};
use crate::traffic::{MsgSize, TrafficClass, TrafficCounters};

/// Network timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetworkConfig {
    /// The interconnect fabric.
    pub topology: Topology,
    /// Per-hop link latency in cycles (Table 2: 7 cycles).
    pub link_latency: u64,
    /// Fixed overhead per message (injection + ejection pipeline).
    pub fixed_overhead: u64,
    /// Whether to model per-node injection-port serialization (one flit per
    /// cycle per sender). Captures the congestion that the paper's TCC
    /// traffic storm causes without a full router model.
    pub model_contention: bool,
}

impl NetworkConfig {
    /// Table 2 parameters for a machine with `tiles` tiles.
    pub fn paper_default(tiles: u16) -> Self {
        NetworkConfig {
            topology: Topology::for_tiles(tiles),
            link_latency: 7,
            fixed_overhead: 2,
            model_contention: true,
        }
    }

    /// Conservative lookahead for a message that must cross at least
    /// `min_hops` links: the minimum possible end-to-end latency under
    /// this configuration.
    ///
    /// Every delivery pays `fixed_overhead + hops * link_latency`
    /// up front; queue wait, extra flits, and perturbation only *add*
    /// delay ([`Network::send_info`]). A conservative parallel scheduler
    /// can therefore let a domain run `lookahead_bound` cycles past the
    /// rest of the machine: nothing sent from another domain "now" can
    /// arrive sooner. Combine with
    /// [`Topology::min_inter_domain_hops`](crate::Topology::min_inter_domain_hops):
    ///
    /// ```
    /// use sb_net::NetworkConfig;
    ///
    /// let cfg = NetworkConfig::paper_default(64);
    /// let min_hops = cfg.topology.min_inter_domain_hops(&vec![0; 64]);
    /// assert_eq!(min_hops, None); // one domain: no cross-domain traffic
    /// assert_eq!(cfg.lookahead_bound(1), 2 + 7); // adjacent domains
    /// assert_eq!(cfg.lookahead_bound(0), 2); // co-located endpoints
    /// ```
    pub fn lookahead_bound(&self, min_hops: u64) -> u64 {
        self.fixed_overhead + min_hops * self.link_latency
    }
}

/// Latency decomposition of one delivery, as reported by
/// [`Network::send_info`]. The arrival time satisfies
/// `arrive = depart + wire + perturb_extra` and
/// `depart = send time + queue_wait`, so the segments tile the whole
/// delivery interval exactly — the property the critical-path
/// attribution in `sb-sim` relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendInfo {
    /// When the message left its injection port.
    pub depart: Cycle,
    /// Cycles spent waiting for the injection port (contention).
    pub queue_wait: u64,
    /// Fabric hop count between the endpoints.
    pub hops: u64,
    /// Uncontended wire time: fixed overhead + hops × link + (flits − 1).
    pub wire: u64,
    /// Extra delay added by the timing adversary (0 when unperturbed).
    pub perturb_extra: u64,
}

/// The interconnect: computes message delivery times and tallies traffic.
///
/// The model is latency-first: a message from `src` to `dst` of `size`
/// arrives at
///
/// ```text
/// depart  = max(now, src injection port free)     (if contention on)
/// arrive  = depart + fixed + hops * link_latency + (flits - 1)
/// ```
///
/// and the injection port of `src` stays busy for `flits` cycles. Local
/// (same-tile) messages still pay the fixed overhead.
///
/// # Examples
///
/// ```
/// use sb_engine::Cycle;
/// use sb_net::{MsgSize, Network, NetworkConfig, NodeId, TrafficClass};
///
/// let mut net = Network::new(NetworkConfig::paper_default(64));
/// let t1 = net.send(Cycle(0), NodeId(0), NodeId(1), MsgSize::Small, TrafficClass::SmallCMessage);
/// assert_eq!(t1, Cycle(2 + 7)); // fixed 2 + 1 hop * 7
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    cfg: NetworkConfig,
    inject_free: Vec<Cycle>,
    counters: TrafficCounters,
    hop_total: u64,
    queue_delay_total: u64,
    /// Optional seeded timing adversary (fuzzing only). `None` leaves the
    /// delivery path bit-identical to the unperturbed model.
    perturb: Option<Perturbation>,
}

impl Network {
    /// Creates an idle network.
    pub fn new(cfg: NetworkConfig) -> Self {
        Network {
            inject_free: vec![Cycle::ZERO; cfg.topology.tiles() as usize],
            cfg,
            counters: TrafficCounters::new(),
            hop_total: 0,
            queue_delay_total: 0,
            perturb: None,
        }
    }

    /// Creates an idle network with a seeded timing adversary attached
    /// (see [`PerturbationConfig`]). Used by the `sb-check` fuzzer; every
    /// delivery is delayed deterministically, never hastened.
    pub fn with_perturbation(cfg: NetworkConfig, p: PerturbationConfig) -> Self {
        let mut net = Self::new(cfg);
        net.perturb = Some(Perturbation::new(p, cfg.topology.tiles()));
        net
    }

    /// Sends a message at time `now`; returns its arrival time at `dst`.
    /// Also tallies the message under `class`.
    pub fn send(
        &mut self,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        size: MsgSize,
        class: TrafficClass,
    ) -> Cycle {
        self.send_info(now, src, dst, size, class).0
    }

    /// [`Network::send`] plus a latency decomposition of the delivery.
    ///
    /// The arrival time and all network state mutations are identical to
    /// `send` (which delegates here); the extra [`SendInfo`] is derived
    /// from the same intermediate values, so asking for it never changes
    /// simulated timing.
    pub fn send_info(
        &mut self,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        size: MsgSize,
        class: TrafficClass,
    ) -> (Cycle, SendInfo) {
        self.counters.record(class, size);
        let hops = self.cfg.topology.hops(src, dst) as u64;
        self.hop_total += hops;
        let flits = size.flits() as u64;
        let depart = if self.cfg.model_contention {
            let free = &mut self.inject_free[src.idx()];
            let depart = now.max_of(*free);
            *free = depart + flits;
            self.queue_delay_total += (depart - now).as_u64();
            depart
        } else {
            now
        };
        let wire = self.cfg.fixed_overhead + hops * self.cfg.link_latency + (flits - 1);
        let base = depart + wire;
        let arrive = match &mut self.perturb {
            None => base,
            Some(p) => Cycle(p.perturb(src.idx(), dst.idx(), class, base.as_u64())),
        };
        let info = SendInfo {
            depart,
            queue_wait: (depart - now).as_u64(),
            hops,
            wire,
            perturb_extra: (arrive - base).as_u64(),
        };
        (arrive, info)
    }

    /// Latency of a hypothetical message without sending it (no contention,
    /// no tally). Useful for computing round trips.
    pub fn pure_latency(&self, src: NodeId, dst: NodeId, size: MsgSize) -> u64 {
        let hops = self.cfg.topology.hops(src, dst) as u64;
        self.cfg.fixed_overhead + hops * self.cfg.link_latency + (size.flits() as u64 - 1)
    }

    /// Traffic tallies so far.
    pub fn counters(&self) -> &TrafficCounters {
        &self.counters
    }

    /// Sum of hop counts over all sent messages.
    pub fn total_hops(&self) -> u64 {
        self.hop_total
    }

    /// Total cycles messages spent waiting for their injection port.
    pub fn total_queue_delay(&self) -> u64 {
        self.queue_delay_total
    }

    /// The configuration.
    pub fn config(&self) -> NetworkConfig {
        self.cfg
    }

    /// The interconnect fabric.
    pub fn topology(&self) -> Topology {
        self.cfg.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetworkConfig::paper_default(64))
    }

    #[test]
    fn latency_scales_with_hops() {
        let mut n = net();
        let near = n.send(
            Cycle(0),
            NodeId(0),
            NodeId(1),
            MsgSize::Small,
            TrafficClass::MemRd,
        );
        let mut n2 = net();
        let far = n2.send(
            Cycle(0),
            NodeId(0),
            NodeId(36),
            MsgSize::Small,
            TrafficClass::MemRd,
        );
        assert!(far > near, "farther destination takes longer");
        assert_eq!(near, Cycle(9)); // 2 fixed + 7 * 1 hop
    }

    #[test]
    fn serialization_adds_flit_cycles() {
        let mut a = net();
        let small = a.send(
            Cycle(0),
            NodeId(0),
            NodeId(1),
            MsgSize::Small,
            TrafficClass::MemRd,
        );
        let mut b = net();
        let sig = b.send(
            Cycle(0),
            NodeId(0),
            NodeId(1),
            MsgSize::SignaturePair,
            TrafficClass::LargeCMessage,
        );
        assert_eq!(sig.as_u64() - small.as_u64(), 6); // 7 flits vs 1
    }

    #[test]
    fn local_messages_pay_fixed_overhead_only() {
        let mut n = net();
        let t = n.send(
            Cycle(5),
            NodeId(3),
            NodeId(3),
            MsgSize::Small,
            TrafficClass::SmallCMessage,
        );
        assert_eq!(t, Cycle(7));
    }

    #[test]
    fn contention_backpressures_one_sender() {
        let mut n = net();
        // Two large messages back to back from node 0: the second waits for
        // the first's 33 flits to leave the injection port.
        let t1 = n.send(
            Cycle(0),
            NodeId(0),
            NodeId(1),
            MsgSize::SignaturePair,
            TrafficClass::LargeCMessage,
        );
        let t2 = n.send(
            Cycle(0),
            NodeId(0),
            NodeId(1),
            MsgSize::SignaturePair,
            TrafficClass::LargeCMessage,
        );
        assert_eq!(t2.as_u64() - t1.as_u64(), 7);
        assert_eq!(n.total_queue_delay(), 7);
        // A different sender is unaffected.
        let t3 = n.send(
            Cycle(0),
            NodeId(2),
            NodeId(1),
            MsgSize::Small,
            TrafficClass::SmallCMessage,
        );
        assert_eq!(t3, Cycle(9));
    }

    #[test]
    fn contention_can_be_disabled() {
        let mut cfg = NetworkConfig::paper_default(64);
        cfg.model_contention = false;
        let mut n = Network::new(cfg);
        let t1 = n.send(
            Cycle(0),
            NodeId(0),
            NodeId(1),
            MsgSize::SignaturePair,
            TrafficClass::LargeCMessage,
        );
        let t2 = n.send(
            Cycle(0),
            NodeId(0),
            NodeId(1),
            MsgSize::SignaturePair,
            TrafficClass::LargeCMessage,
        );
        assert_eq!(t1, t2);
        assert_eq!(n.total_queue_delay(), 0);
    }

    #[test]
    fn counters_and_hops_accumulate() {
        let mut n = net();
        n.send(
            Cycle(0),
            NodeId(0),
            NodeId(1),
            MsgSize::Line,
            TrafficClass::RemoteShRd,
        );
        n.send(
            Cycle(0),
            NodeId(0),
            NodeId(2),
            MsgSize::Line,
            TrafficClass::RemoteDirtyRd,
        );
        assert_eq!(n.counters().total_messages(), 2);
        assert_eq!(n.total_hops(), 3);
    }

    #[test]
    fn perturbed_network_only_delays_and_preserves_pair_fifo() {
        let cfg = NetworkConfig::paper_default(16);
        let mut plain = Network::new(cfg);
        let mut adv = Network::with_perturbation(cfg, PerturbationConfig::from_seed(42));
        let mut last_pair = Cycle::ZERO;
        for i in 0..300u64 {
            let (src, dst) = (NodeId((i % 16) as u16), NodeId(((i * 7) % 16) as u16));
            let t = Cycle(i * 3);
            let base = plain.send(t, src, dst, MsgSize::Small, TrafficClass::SmallCMessage);
            let pert = adv.send(t, src, dst, MsgSize::Small, TrafficClass::SmallCMessage);
            assert!(pert >= base, "perturbation may only delay deliveries");
            if (src, dst) == (NodeId(1), NodeId(7)) {
                assert!(pert >= last_pair, "same-pair deliveries stay FIFO");
                last_pair = pert;
            }
        }
        // Traffic accounting is unaffected by the adversary.
        assert_eq!(
            plain.counters().total_messages(),
            adv.counters().total_messages()
        );
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let cfg = NetworkConfig::paper_default(16);
        let run = |seed: u64| -> Vec<Cycle> {
            let mut n = Network::with_perturbation(cfg, PerturbationConfig::from_seed(seed));
            (0..100u64)
                .map(|i| {
                    n.send(
                        Cycle(i),
                        NodeId((i % 16) as u16),
                        NodeId(((i + 5) % 16) as u16),
                        MsgSize::Line,
                        TrafficClass::RemoteShRd,
                    )
                })
                .collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(
            run(9),
            run(10),
            "the adversary actually depends on its seed"
        );
    }

    #[test]
    fn pure_latency_matches_uncontended_send() {
        let mut n = net();
        let pure = n.pure_latency(NodeId(0), NodeId(9), MsgSize::Signature);
        let sent = n.send(
            Cycle(0),
            NodeId(0),
            NodeId(9),
            MsgSize::Signature,
            TrafficClass::LargeCMessage,
        );
        assert_eq!(Cycle(pure), sent);
    }
}
