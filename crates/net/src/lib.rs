//! On-chip interconnect model: a 2D torus with traffic accounting.
//!
//! The paper's machine connects tiles with a 2D torus whose links have a
//! 7-cycle latency (Table 2), modelled originally with the network simulator
//! of Das et al. This crate provides the equivalent protocol-level model:
//!
//! * [`Topology`] — the fabric seam: a plain [`Torus`] with wraparound
//!   minimal-hop routing (the paper's fabric), a concentrated mesh
//!   ([`CMesh`], several tiles per router), or an express-link torus
//!   ([`ExpressTorus`]) for the >64-core scaling sweeps,
//! * [`MsgSize`]/[`TrafficClass`] — message sizes in flits and the five
//!   traffic classes the paper charts in Figures 18–19 (`MemRd`,
//!   `RemoteShRd`, `RemoteDirtyRd`, `LargeCMessage`, `SmallCMessage`),
//! * [`Network`] — latency computation (per-hop link latency plus
//!   serialization of multi-flit messages plus optional per-node injection
//!   contention) and a [`TrafficCounters`] tally.
//!
//! Full router microarchitecture (virtual channels, buffer occupancy) is a
//! documented substitution — see DESIGN.md §1.
//!
//! # Examples
//!
//! ```
//! use sb_net::{MsgSize, Network, NetworkConfig, NodeId, TrafficClass};
//! use sb_engine::Cycle;
//!
//! let mut net = Network::new(NetworkConfig::paper_default(64));
//! let arrive = net.send(
//!     Cycle(0),
//!     NodeId(0),
//!     NodeId(63),
//!     MsgSize::Small,
//!     TrafficClass::SmallCMessage,
//! );
//! assert!(arrive > Cycle(0));
//! assert_eq!(net.counters().count(TrafficClass::SmallCMessage), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod perturb;
mod topology;
mod traffic;

pub use network::{Network, NetworkConfig, SendInfo};
pub use perturb::PerturbationConfig;
pub use topology::{CMesh, ExpressTorus, NodeId, Topology, Torus};
pub use traffic::{MsgSize, TrafficClass, TrafficCounters};
