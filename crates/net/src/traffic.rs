//! Message sizes and traffic classification.

use std::fmt;

/// Flit width in bits. Multi-flit messages pay one extra cycle of
/// serialization per additional flit.
pub const FLIT_BITS: u32 = 128;

/// Wire size of a message.
///
/// The paper's traffic study (Figures 18–19) distinguishes *large* commit
/// messages — the ones carrying 2 Kbit signatures (`commit request` and
/// `bulk inv` in ScalableBulk) — from everything else, which fits in a flit
/// or two.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgSize {
    /// Control message: tag + a few fields; one flit.
    Small,
    /// A message carrying a cache line (32 B data + header); 3 flits.
    Line,
    /// A message carrying one address signature (2 Kbit + header).
    Signature,
    /// A message carrying two signatures (R and W, e.g. `commit request`).
    SignaturePair,
}

impl MsgSize {
    /// Size in flits. Signatures travel *compressed* (§3.2 of the paper:
    /// "the compressed R and W signatures and this list are sent"):
    /// chunk footprints set a few dozen bits of the 2 Kbit register, so
    /// position-coding shrinks them by roughly 5×.
    pub fn flits(self) -> u32 {
        match self {
            MsgSize::Small => 1,
            MsgSize::Line => 1 + 256 / FLIT_BITS, // header + 32 B payload
            MsgSize::Signature => 4,
            MsgSize::SignaturePair => 7,
        }
    }

    /// Whether Figures 18–19 would count this as a "large" message.
    pub fn is_large(self) -> bool {
        matches!(self, MsgSize::Signature | MsgSize::SignaturePair)
    }
}

/// The five traffic classes of Figures 18 and 19.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Read of a cache line from memory.
    MemRd,
    /// Read of a cache line from another cache in state shared.
    RemoteShRd,
    /// Read of a cache line from another cache in state dirty.
    RemoteDirtyRd,
    /// Commit-protocol message carrying a signature (large).
    LargeCMessage,
    /// Any other commit-protocol message (small).
    SmallCMessage,
}

impl TrafficClass {
    /// All five classes, in the order the paper's figures stack them.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::MemRd,
        TrafficClass::RemoteShRd,
        TrafficClass::RemoteDirtyRd,
        TrafficClass::LargeCMessage,
        TrafficClass::SmallCMessage,
    ];

    /// Stable index of this class into length-5 per-class tables (same
    /// order as [`TrafficClass::ALL`]).
    pub fn index(self) -> usize {
        match self {
            TrafficClass::MemRd => 0,
            TrafficClass::RemoteShRd => 1,
            TrafficClass::RemoteDirtyRd => 2,
            TrafficClass::LargeCMessage => 3,
            TrafficClass::SmallCMessage => 4,
        }
    }

    /// The paper's label for this class.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::MemRd => "MemRd",
            TrafficClass::RemoteShRd => "RemoteShRd",
            TrafficClass::RemoteDirtyRd => "RemoteDirtyRd",
            TrafficClass::LargeCMessage => "LargeCMessage",
            TrafficClass::SmallCMessage => "SmallCMessage",
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-class message and flit tallies.
///
/// # Examples
///
/// ```
/// use sb_net::{MsgSize, TrafficClass, TrafficCounters};
///
/// let mut t = TrafficCounters::new();
/// t.record(TrafficClass::MemRd, MsgSize::Line);
/// t.record(TrafficClass::SmallCMessage, MsgSize::Small);
/// assert_eq!(t.total_messages(), 2);
/// assert_eq!(t.count(TrafficClass::MemRd), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    messages: [u64; 5],
    flits: [u64; 5],
}

impl TrafficCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tallies one message.
    pub fn record(&mut self, class: TrafficClass, size: MsgSize) {
        let i = class.index();
        self.messages[i] += 1;
        self.flits[i] += size.flits() as u64;
    }

    /// Messages recorded in `class`.
    pub fn count(&self, class: TrafficClass) -> u64 {
        self.messages[class.index()]
    }

    /// Flits recorded in `class`.
    pub fn flits(&self, class: TrafficClass) -> u64 {
        self.flits[class.index()]
    }

    /// Total messages across classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Total flits across classes.
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }

    /// Wire bytes recorded in `class` ([`FLIT_BITS`] per flit).
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.flits(class) * (FLIT_BITS as u64 / 8)
    }

    /// Total wire bytes across classes.
    pub fn total_bytes(&self) -> u64 {
        self.total_flits() * (FLIT_BITS as u64 / 8)
    }

    /// Fraction of total messages in `class` (0.0 when empty).
    pub fn fraction(&self, class: TrafficClass) -> f64 {
        let total = self.total_messages();
        if total == 0 {
            0.0
        } else {
            self.count(class) as f64 / total as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &TrafficCounters) {
        for i in 0..5 {
            self.messages[i] += other.messages[i];
            self.flits[i] += other.flits[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_sizes_match_geometry() {
        assert_eq!(MsgSize::Small.flits(), 1);
        assert_eq!(MsgSize::Line.flits(), 3);
        assert_eq!(MsgSize::Signature.flits(), 4);
        assert_eq!(MsgSize::SignaturePair.flits(), 7);
        assert!(MsgSize::Signature.is_large());
        assert!(MsgSize::SignaturePair.is_large());
        assert!(!MsgSize::Small.is_large());
        assert!(!MsgSize::Line.is_large());
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = TrafficCounters::new();
        a.record(TrafficClass::MemRd, MsgSize::Line);
        a.record(TrafficClass::LargeCMessage, MsgSize::SignaturePair);
        let mut b = TrafficCounters::new();
        b.record(TrafficClass::MemRd, MsgSize::Line);
        a.merge(&b);
        assert_eq!(a.count(TrafficClass::MemRd), 2);
        assert_eq!(a.flits(TrafficClass::MemRd), 6);
        assert_eq!(a.total_messages(), 3);
        assert_eq!(a.total_flits(), 6 + 7);
        assert_eq!(a.bytes(TrafficClass::MemRd), 6 * 16);
        assert_eq!(a.total_bytes(), (6 + 7) * 16);
        assert!((a.fraction(TrafficClass::MemRd) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(TrafficCounters::new().fraction(TrafficClass::MemRd), 0.0);
    }

    #[test]
    fn all_classes_have_distinct_labels() {
        let labels: Vec<_> = TrafficClass::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), 5);
        assert_eq!(dedup.len(), 5);
        assert_eq!(TrafficClass::MemRd.to_string(), "MemRd");
    }
}
