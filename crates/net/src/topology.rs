//! 2D-torus topology.

use std::fmt;

use sb_mem::{CoreId, DirId};

/// A tile in the torus. Tile `i` hosts core `i` and directory module `i`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index for table lookups.
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl From<CoreId> for NodeId {
    fn from(c: CoreId) -> NodeId {
        NodeId(c.0)
    }
}

impl From<DirId> for NodeId {
    fn from(d: DirId) -> NodeId {
        NodeId(d.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Factors `n` into `(cols, rows)` with `rows` the largest divisor of
/// `n` not exceeding `√n` (so `cols >= rows` and `cols * rows == n`).
fn nearest_square(n: u16) -> (u16, u16) {
    debug_assert!(n > 0);
    let mut rows = 1u16;
    let mut d = 1u16;
    while d as u32 * d as u32 <= n as u32 {
        if n.is_multiple_of(d) {
            rows = d;
        }
        d += 1;
    }
    (n / rows, rows)
}

/// A `cols × rows` 2D torus with minimal XY routing.
///
/// # Examples
///
/// ```
/// use sb_net::{NodeId, Torus};
///
/// let t = Torus::for_tiles(64); // 8 × 8
/// assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
/// // Wraparound: node 0 to node 7 on an 8-wide row is 1 hop, not 7.
/// assert_eq!(t.hops(NodeId(0), NodeId(7)), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    cols: u16,
    rows: u16,
}

impl Torus {
    /// Creates a `cols × rows` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "torus dimensions must be positive");
        Torus { cols, rows }
    }

    /// Chooses the most-square torus for `tiles` tiles: 64 → 8×8,
    /// 32 → 8×4, 48 → 8×6, etc. `rows` is the largest divisor of
    /// `tiles` that is at most `√tiles`, so powers of two keep their
    /// historical shapes and primes (used by `sb-check explore`'s tiny
    /// configs, e.g. 3 tiles) degenerate to a `tiles × 1` ring.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn for_tiles(tiles: u16) -> Self {
        assert!(tiles > 0, "tile count must be positive");
        let (cols, rows) = nearest_square(tiles);
        Torus::new(cols, rows)
    }

    /// Columns.
    pub fn cols(self) -> u16 {
        self.cols
    }

    /// Rows.
    pub fn rows(self) -> u16 {
        self.rows
    }

    /// Total tiles.
    pub fn tiles(self) -> u16 {
        self.cols * self.rows
    }

    /// (x, y) coordinates of a tile.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn coords(self, n: NodeId) -> (u16, u16) {
        assert!(n.0 < self.tiles(), "node {n} outside torus");
        (n.0 % self.cols, n.0 / self.cols)
    }

    /// Tile at (x, y).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn node_at(self, x: u16, y: u16) -> NodeId {
        assert!(x < self.cols && y < self.rows, "coords out of torus");
        NodeId(y * self.cols + x)
    }

    /// Minimal hop count between two tiles with wraparound in both
    /// dimensions.
    pub fn hops(self, a: NodeId, b: NodeId) -> u16 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        dx.min(self.cols - dx) + dy.min(self.rows - dy)
    }

    /// The tile nearest the geometric centre — where BulkSC's centralized
    /// arbiter sits ("protocol from \[5\] with arbiter in the center",
    /// Table 3).
    pub fn center(self) -> NodeId {
        self.node_at(self.cols / 2, self.rows / 2)
    }

    /// Minimum hop distance between any two tiles assigned to *different*
    /// domains, or `None` when every tile shares one domain (no
    /// cross-domain link exists, so the lookahead is unbounded).
    ///
    /// `assignment[tile]` is the domain of that tile. This is the
    /// quantity a conservative parallel scheduler turns into guaranteed
    /// lookahead: any cross-domain message must traverse at least this
    /// many links, each costing a fixed latency.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not cover every tile.
    ///
    /// ```
    /// use sb_net::Torus;
    ///
    /// let t = Torus::for_tiles(4); // 2 × 2
    /// // Adjacent tiles in different domains: one link apart.
    /// assert_eq!(t.min_inter_domain_hops(&[0, 1, 0, 1]), Some(1));
    /// assert_eq!(t.min_inter_domain_hops(&[0, 0, 0, 0]), None);
    /// ```
    pub fn min_inter_domain_hops(self, assignment: &[usize]) -> Option<u16> {
        assert!(
            assignment.len() >= self.tiles() as usize,
            "assignment covers {} tiles, torus has {}",
            assignment.len(),
            self.tiles()
        );
        let mut best: Option<u16> = None;
        for a in 0..self.tiles() {
            for b in (a + 1)..self.tiles() {
                if assignment[a as usize] == assignment[b as usize] {
                    continue;
                }
                let h = self.hops(NodeId(a), NodeId(b));
                best = Some(best.map_or(h, |m| m.min(h)));
                if best == Some(1) {
                    return best; // torus minimum for distinct tiles
                }
            }
        }
        best
    }

    /// Average hop distance from `src` to all other tiles (useful for
    /// calibration tests).
    pub fn mean_hops_from(self, src: NodeId) -> f64 {
        let total: u32 = (0..self.tiles())
            .filter(|&t| NodeId(t) != src)
            .map(|t| self.hops(src, NodeId(t)) as u32)
            .sum();
        total as f64 / (self.tiles() - 1) as f64
    }
}

/// A concentrated 2D mesh: `conc` tiles share each router, and the
/// routers form a `cols × rows` mesh *without* wraparound links.
/// Tiles on the same router are zero network hops apart (they talk
/// through the shared router's crossbar); otherwise the hop count is
/// the Manhattan distance between the two routers.
///
/// # Examples
///
/// ```
/// use sb_net::{CMesh, NodeId};
///
/// let m = CMesh::for_tiles(64, 4); // 16 routers, 4 × 4 mesh
/// assert_eq!(m.hops(NodeId(0), NodeId(3)), 0); // same router
/// assert_eq!(m.hops(NodeId(0), NodeId(63)), 6); // corner to corner
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CMesh {
    conc: u16,
    cols: u16,
    rows: u16,
    tiles: u16,
}

impl CMesh {
    /// Builds the most-square concentrated mesh for `tiles` tiles with
    /// `conc` tiles per router. When `conc` does not divide `tiles`, the
    /// last router is partially populated.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` or `conc` is zero.
    pub fn for_tiles(tiles: u16, conc: u16) -> Self {
        assert!(tiles > 0, "tile count must be positive");
        assert!(conc > 0, "concentration must be positive");
        let routers = tiles.div_ceil(conc);
        let (cols, rows) = nearest_square(routers);
        CMesh {
            conc,
            cols,
            rows,
            tiles,
        }
    }

    /// Tiles per router.
    pub fn concentration(self) -> u16 {
        self.conc
    }

    /// Router-grid columns.
    pub fn cols(self) -> u16 {
        self.cols
    }

    /// Router-grid rows.
    pub fn rows(self) -> u16 {
        self.rows
    }

    /// Total tiles.
    pub fn tiles(self) -> u16 {
        self.tiles
    }

    /// (x, y) router coordinates of a tile.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn router_coords(self, n: NodeId) -> (u16, u16) {
        assert!(n.0 < self.tiles, "node {n} outside mesh");
        let r = n.0 / self.conc;
        (r % self.cols, r / self.cols)
    }

    /// Minimal hop count: zero for tiles on the same router, else the
    /// Manhattan router distance (no wraparound).
    pub fn hops(self, a: NodeId, b: NodeId) -> u16 {
        let (ax, ay) = self.router_coords(a);
        let (bx, by) = self.router_coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// A tile on the router nearest the geometric centre of the mesh.
    pub fn center(self) -> NodeId {
        let router = (self.rows / 2) * self.cols + self.cols / 2;
        NodeId((router * self.conc).min(self.tiles - 1))
    }
}

/// A 2D torus augmented with express links every `every` tiles along
/// each dimension (a hierarchical fabric: local rings plus a sparser
/// long-haul ring). Traversal cost per dimension for ring distance `d`
/// is the cheapest of walking locally, riding `d / every` express hops
/// plus the local remainder, or overshooting by one express hop and
/// walking back.
///
/// # Examples
///
/// ```
/// use sb_net::{ExpressTorus, NodeId};
///
/// let x = ExpressTorus::for_tiles(64, 4); // 8 × 8 torus, express every 4
/// // Distance 4 collapses to a single express hop.
/// assert_eq!(x.hops(NodeId(0), NodeId(4)), 1);
/// // Distance 3: overshoot one express hop, walk one back.
/// assert_eq!(x.hops(NodeId(0), NodeId(3)), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpressTorus {
    torus: Torus,
    every: u16,
}

impl ExpressTorus {
    /// Builds the most-square express torus for `tiles` tiles with an
    /// express link every `every` tiles per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero or `every < 2` (an express spacing of
    /// one is just the base torus).
    pub fn for_tiles(tiles: u16, every: u16) -> Self {
        assert!(every >= 2, "express spacing must be at least 2");
        ExpressTorus {
            torus: Torus::for_tiles(tiles),
            every,
        }
    }

    /// The underlying torus.
    pub fn torus(self) -> Torus {
        self.torus
    }

    /// Express-link spacing.
    pub fn express_every(self) -> u16 {
        self.every
    }

    /// Total tiles.
    pub fn tiles(self) -> u16 {
        self.torus.tiles()
    }

    /// Cheapest traversal of ring distance `d` with express links every
    /// `e` tiles: all-local, express-then-walk, or overshoot-and-return.
    /// Zero only when `d` is zero, so distinct routers always cost at
    /// least one hop and lookahead stays positive.
    fn dim_cost(d: u16, e: u16) -> u16 {
        if d == 0 {
            return 0;
        }
        let express = d / e;
        let rem = d % e;
        let mut best = d.min(express + rem);
        if rem > 0 {
            best = best.min(express + 1 + (e - rem));
        }
        best
    }

    /// Minimal hop count between two tiles using local and express
    /// links in both dimensions (with wraparound).
    pub fn hops(self, a: NodeId, b: NodeId) -> u16 {
        let (ax, ay) = self.torus.coords(a);
        let (bx, by) = self.torus.coords(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        let rx = dx.min(self.torus.cols() - dx);
        let ry = dy.min(self.torus.rows() - dy);
        Self::dim_cost(rx, self.every) + Self::dim_cost(ry, self.every)
    }

    /// The tile nearest the geometric centre.
    pub fn center(self) -> NodeId {
        self.torus.center()
    }
}

/// The interconnect fabric: which tiles exist and how many link hops
/// separate any two of them. All timing (`sb_net::Network`) and the
/// parallel scheduler's lookahead derive from this one seam, so adding
/// a fabric here is all it takes to sweep it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// A plain 2D torus (the paper's fabric).
    Torus(Torus),
    /// A concentrated mesh: several tiles per router, no wraparound.
    CMesh(CMesh),
    /// A torus with express links every few tiles per dimension.
    ExpressTorus(ExpressTorus),
}

impl Topology {
    /// Concentration used by [`Topology::by_name`] for `"cmesh"`.
    pub const DEFAULT_CONCENTRATION: u16 = 4;
    /// Express spacing used by [`Topology::by_name`] for `"xtorus"`.
    pub const DEFAULT_EXPRESS_EVERY: u16 = 4;

    /// The default fabric for `tiles` tiles: the most-square 2D torus.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn for_tiles(tiles: u16) -> Self {
        Topology::Torus(Torus::for_tiles(tiles))
    }

    /// Looks a fabric up by its sweep name: `"torus"`, `"cmesh"`
    /// (concentration 4), or `"xtorus"` (express links every 4).
    /// Returns `None` for unknown names.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn by_name(name: &str, tiles: u16) -> Option<Self> {
        match name {
            "torus" => Some(Topology::Torus(Torus::for_tiles(tiles))),
            "cmesh" => Some(Topology::CMesh(CMesh::for_tiles(
                tiles,
                Self::DEFAULT_CONCENTRATION,
            ))),
            "xtorus" => Some(Topology::ExpressTorus(ExpressTorus::for_tiles(
                tiles,
                Self::DEFAULT_EXPRESS_EVERY,
            ))),
            _ => None,
        }
    }

    /// The fabric's sweep name (inverse of [`Topology::by_name`]).
    pub fn name(self) -> &'static str {
        match self {
            Topology::Torus(_) => "torus",
            Topology::CMesh(_) => "cmesh",
            Topology::ExpressTorus(_) => "xtorus",
        }
    }

    /// Human-readable description, e.g. `2D torus 8x8`.
    pub fn describe(self) -> String {
        match self {
            Topology::Torus(t) => format!("2D torus {}x{}", t.cols(), t.rows()),
            Topology::CMesh(m) => format!(
                "concentrated mesh {}x{} (x{})",
                m.cols(),
                m.rows(),
                m.concentration()
            ),
            Topology::ExpressTorus(x) => format!(
                "express torus {}x{} (every {})",
                x.torus().cols(),
                x.torus().rows(),
                x.express_every()
            ),
        }
    }

    /// Total tiles.
    pub fn tiles(self) -> u16 {
        match self {
            Topology::Torus(t) => t.tiles(),
            Topology::CMesh(m) => m.tiles(),
            Topology::ExpressTorus(x) => x.tiles(),
        }
    }

    /// Minimal hop count between two tiles.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn hops(self, a: NodeId, b: NodeId) -> u16 {
        match self {
            Topology::Torus(t) => t.hops(a, b),
            Topology::CMesh(m) => m.hops(a, b),
            Topology::ExpressTorus(x) => x.hops(a, b),
        }
    }

    /// The tile nearest the fabric's geometric centre — where BulkSC's
    /// centralized arbiter sits.
    pub fn center(self) -> NodeId {
        match self {
            Topology::Torus(t) => t.center(),
            Topology::CMesh(m) => m.center(),
            Topology::ExpressTorus(x) => x.center(),
        }
    }

    /// Minimum hop distance between any two tiles assigned to
    /// *different* domains, or `None` when every tile shares one domain.
    /// See [`Torus::min_inter_domain_hops`]; on a concentrated mesh the
    /// minimum can be zero (two co-routed tiles in different domains),
    /// which a conservative scheduler must treat as "no free lookahead
    /// from the wire".
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not cover every tile.
    pub fn min_inter_domain_hops(self, assignment: &[usize]) -> Option<u16> {
        let tiles = self.tiles();
        assert!(
            assignment.len() >= tiles as usize,
            "assignment covers {} tiles, fabric has {}",
            assignment.len(),
            tiles
        );
        let floor = match self {
            Topology::CMesh(_) => 0,
            _ => 1,
        };
        let mut best: Option<u16> = None;
        for a in 0..tiles {
            for b in (a + 1)..tiles {
                if assignment[a as usize] == assignment[b as usize] {
                    continue;
                }
                let h = self.hops(NodeId(a), NodeId(b));
                best = Some(best.map_or(h, |m| m.min(h)));
                if best == Some(floor) {
                    return best;
                }
            }
        }
        best
    }

    /// Average hop distance from `src` to all other tiles.
    pub fn mean_hops_from(self, src: NodeId) -> f64 {
        let total: u32 = (0..self.tiles())
            .filter(|&t| NodeId(t) != src)
            .map(|t| self.hops(src, NodeId(t)) as u32)
            .sum();
        total as f64 / (self.tiles() - 1) as f64
    }
}

impl From<Torus> for Topology {
    fn from(t: Torus) -> Topology {
        Topology::Torus(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_tiles_shapes() {
        assert_eq!(Torus::for_tiles(64), Torus::new(8, 8));
        assert_eq!(Torus::for_tiles(32), Torus::new(8, 4));
        assert_eq!(Torus::for_tiles(16), Torus::new(4, 4));
        assert_eq!(Torus::for_tiles(1), Torus::new(1, 1));
        // Large sweeps keep the most-square shape too.
        assert_eq!(Torus::for_tiles(128), Torus::new(16, 8));
        assert_eq!(Torus::for_tiles(256), Torus::new(16, 16));
        assert_eq!(Torus::for_tiles(512), Torus::new(32, 16));
        assert_eq!(Torus::for_tiles(1024), Torus::new(32, 32));
    }

    #[test]
    fn non_pow2_tiles_pick_the_nearest_square() {
        // Composite counts factor toward a square, not a long strip.
        assert_eq!(Torus::for_tiles(48), Torus::new(8, 6));
        assert_eq!(Torus::for_tiles(12), Torus::new(4, 3));
        assert_eq!(Torus::for_tiles(96), Torus::new(12, 8));
        // Primes still degenerate to a ring; a 3-ring wraps: 0 → 2 is
        // one hop, not two.
        assert_eq!(Torus::for_tiles(3), Torus::new(3, 1));
        assert_eq!(Torus::for_tiles(7), Torus::new(7, 1));
        let t = Torus::for_tiles(3);
        assert_eq!(t.hops(NodeId(0), NodeId(2)), 1);
    }

    #[test]
    fn nearest_square_invariants() {
        for n in 1u16..=1024 {
            let (cols, rows) = nearest_square(n);
            assert_eq!(cols as u32 * rows as u32, n as u32);
            assert!(rows <= cols, "{n}: rows {rows} > cols {cols}");
            assert!(rows as u32 * rows as u32 <= n as u32);
        }
    }

    #[test]
    fn cmesh_shapes_and_hops() {
        let m = CMesh::for_tiles(64, 4);
        assert_eq!((m.cols(), m.rows()), (4, 4));
        assert_eq!(m.tiles(), 64);
        // Same router: free. Neighbouring routers: one hop. No wrap:
        // opposite corners are (cols-1)+(rows-1) apart.
        assert_eq!(m.hops(NodeId(0), NodeId(3)), 0);
        assert_eq!(m.hops(NodeId(0), NodeId(4)), 1);
        assert_eq!(m.hops(NodeId(0), NodeId(63)), 6);
        // Partially-populated last router still resolves.
        let odd = CMesh::for_tiles(10, 4); // 3 routers -> 3 × 1
        assert_eq!((odd.cols(), odd.rows()), (3, 1));
        assert_eq!(odd.hops(NodeId(8), NodeId(9)), 0);
        assert_eq!(odd.hops(NodeId(0), NodeId(9)), 2);
    }

    #[test]
    fn cmesh_hops_symmetric_and_triangle() {
        let m = CMesh::for_tiles(64, 4);
        for a in 0..64u16 {
            for b in 0..64u16 {
                assert_eq!(m.hops(NodeId(a), NodeId(b)), m.hops(NodeId(b), NodeId(a)));
                for c in [0u16, 13, 37, 63] {
                    assert!(
                        m.hops(NodeId(a), NodeId(b))
                            <= m.hops(NodeId(a), NodeId(c)) + m.hops(NodeId(c), NodeId(b))
                    );
                }
            }
        }
    }

    #[test]
    fn express_torus_beats_plain_torus_never_loses() {
        let x = ExpressTorus::for_tiles(64, 4);
        let t = x.torus();
        for a in 0..64u16 {
            for b in 0..64u16 {
                let xe = x.hops(NodeId(a), NodeId(b));
                let pl = t.hops(NodeId(a), NodeId(b));
                assert!(xe <= pl, "{a}->{b}: express {xe} > plain {pl}");
                assert_eq!(xe == 0, a == b, "express hops zero only for self");
                assert_eq!(xe, x.hops(NodeId(b), NodeId(a)));
            }
        }
        // An aligned express ride: ring distance 4 in one hop.
        assert_eq!(x.hops(NodeId(0), NodeId(4)), 1);
    }

    #[test]
    fn topology_dispatch_and_names() {
        for name in ["torus", "cmesh", "xtorus"] {
            let topo = Topology::by_name(name, 64).unwrap();
            assert_eq!(topo.name(), name);
            assert_eq!(topo.tiles(), 64);
            assert!(topo.center().0 < 64);
            assert_eq!(topo.hops(topo.center(), topo.center()), 0);
        }
        assert!(Topology::by_name("hypercube", 64).is_none());
        assert_eq!(Topology::for_tiles(64).describe(), "2D torus 8x8");
        assert_eq!(
            Topology::by_name("cmesh", 64).unwrap().describe(),
            "concentrated mesh 4x4 (x4)"
        );
        assert_eq!(
            Topology::by_name("xtorus", 64).unwrap().describe(),
            "express torus 8x8 (every 4)"
        );
    }

    #[test]
    fn topology_min_inter_domain_hops_variants() {
        let torus = Topology::for_tiles(4);
        assert_eq!(torus.min_inter_domain_hops(&[0, 1, 0, 1]), Some(1));
        assert_eq!(torus.min_inter_domain_hops(&[0, 0, 0, 0]), None);
        // Two tiles on one cmesh router but in different domains: the
        // wire grants no lookahead at all.
        let cm = Topology::by_name("cmesh", 8).unwrap();
        assert_eq!(cm.min_inter_domain_hops(&[0, 1, 0, 1, 0, 1, 0, 1]), Some(0));
        // One domain per router keeps a one-hop floor.
        assert_eq!(cm.min_inter_domain_hops(&[0, 0, 0, 0, 1, 1, 1, 1]), Some(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tiles_panics() {
        Torus::for_tiles(0);
    }

    #[test]
    fn coords_roundtrip() {
        let t = Torus::new(8, 8);
        for n in 0..64 {
            let (x, y) = t.coords(NodeId(n));
            assert_eq!(t.node_at(x, y), NodeId(n));
        }
    }

    #[test]
    fn hops_symmetric_and_wrapping() {
        let t = Torus::new(8, 8);
        for a in 0..64u16 {
            for b in 0..64u16 {
                let h = t.hops(NodeId(a), NodeId(b));
                assert_eq!(h, t.hops(NodeId(b), NodeId(a)));
                assert!(h <= 8, "max torus distance is cols/2 + rows/2");
            }
        }
        assert_eq!(t.hops(NodeId(0), NodeId(7)), 1); // row wrap
        assert_eq!(t.hops(NodeId(0), NodeId(56)), 1); // column wrap
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
    }

    #[test]
    fn triangle_inequality_samples() {
        let t = Torus::new(8, 4);
        for a in 0..32u16 {
            for b in 0..32u16 {
                for c in [0u16, 5, 17, 31] {
                    assert!(
                        t.hops(NodeId(a), NodeId(b))
                            <= t.hops(NodeId(a), NodeId(c)) + t.hops(NodeId(c), NodeId(b))
                    );
                }
            }
        }
    }

    #[test]
    fn center_is_central() {
        let t = Torus::new(8, 8);
        let c = t.center();
        // The centre's mean distance is no worse than a corner's.
        assert!(t.mean_hops_from(c) <= t.mean_hops_from(NodeId(0)) + 1e-9);
    }

    #[test]
    fn id_conversions() {
        assert_eq!(NodeId::from(CoreId(5)), NodeId(5));
        assert_eq!(NodeId::from(DirId(6)), NodeId(6));
        assert_eq!(NodeId(3).idx(), 3);
    }

    #[test]
    #[should_panic(expected = "outside torus")]
    fn out_of_range_coords_panics() {
        Torus::new(2, 2).coords(NodeId(4));
    }
}
