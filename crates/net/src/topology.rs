//! 2D-torus topology.

use std::fmt;

use sb_mem::{CoreId, DirId};

/// A tile in the torus. Tile `i` hosts core `i` and directory module `i`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index for table lookups.
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl From<CoreId> for NodeId {
    fn from(c: CoreId) -> NodeId {
        NodeId(c.0)
    }
}

impl From<DirId> for NodeId {
    fn from(d: DirId) -> NodeId {
        NodeId(d.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A `cols × rows` 2D torus with minimal XY routing.
///
/// # Examples
///
/// ```
/// use sb_net::{NodeId, Torus};
///
/// let t = Torus::for_tiles(64); // 8 × 8
/// assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
/// // Wraparound: node 0 to node 7 on an 8-wide row is 1 hop, not 7.
/// assert_eq!(t.hops(NodeId(0), NodeId(7)), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    cols: u16,
    rows: u16,
}

impl Torus {
    /// Creates a `cols × rows` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "torus dimensions must be positive");
        Torus { cols, rows }
    }

    /// Chooses the most-square torus for `tiles` tiles: 64 → 8×8,
    /// 32 → 8×4, 16 → 4×4, etc. The paper's machines are powers of two;
    /// a non-power-of-two count (used by `sb-check explore`'s tiny
    /// configs, e.g. 3 tiles) degenerates to a `tiles × 1` ring.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn for_tiles(tiles: u16) -> Self {
        assert!(tiles > 0, "tile count must be positive");
        if tiles & (tiles - 1) != 0 {
            return Torus::new(tiles, 1);
        }
        let log = tiles.trailing_zeros();
        let cols = 1u16 << log.div_ceil(2);
        let rows = tiles / cols;
        Torus::new(cols, rows)
    }

    /// Columns.
    pub fn cols(self) -> u16 {
        self.cols
    }

    /// Rows.
    pub fn rows(self) -> u16 {
        self.rows
    }

    /// Total tiles.
    pub fn tiles(self) -> u16 {
        self.cols * self.rows
    }

    /// (x, y) coordinates of a tile.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn coords(self, n: NodeId) -> (u16, u16) {
        assert!(n.0 < self.tiles(), "node {n} outside torus");
        (n.0 % self.cols, n.0 / self.cols)
    }

    /// Tile at (x, y).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn node_at(self, x: u16, y: u16) -> NodeId {
        assert!(x < self.cols && y < self.rows, "coords out of torus");
        NodeId(y * self.cols + x)
    }

    /// Minimal hop count between two tiles with wraparound in both
    /// dimensions.
    pub fn hops(self, a: NodeId, b: NodeId) -> u16 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        dx.min(self.cols - dx) + dy.min(self.rows - dy)
    }

    /// The tile nearest the geometric centre — where BulkSC's centralized
    /// arbiter sits ("protocol from \[5\] with arbiter in the center",
    /// Table 3).
    pub fn center(self) -> NodeId {
        self.node_at(self.cols / 2, self.rows / 2)
    }

    /// Minimum hop distance between any two tiles assigned to *different*
    /// domains, or `None` when every tile shares one domain (no
    /// cross-domain link exists, so the lookahead is unbounded).
    ///
    /// `assignment[tile]` is the domain of that tile. This is the
    /// quantity a conservative parallel scheduler turns into guaranteed
    /// lookahead: any cross-domain message must traverse at least this
    /// many links, each costing a fixed latency.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not cover every tile.
    ///
    /// ```
    /// use sb_net::Torus;
    ///
    /// let t = Torus::for_tiles(4); // 2 × 2
    /// // Adjacent tiles in different domains: one link apart.
    /// assert_eq!(t.min_inter_domain_hops(&[0, 1, 0, 1]), Some(1));
    /// assert_eq!(t.min_inter_domain_hops(&[0, 0, 0, 0]), None);
    /// ```
    pub fn min_inter_domain_hops(self, assignment: &[usize]) -> Option<u16> {
        assert!(
            assignment.len() >= self.tiles() as usize,
            "assignment covers {} tiles, torus has {}",
            assignment.len(),
            self.tiles()
        );
        let mut best: Option<u16> = None;
        for a in 0..self.tiles() {
            for b in (a + 1)..self.tiles() {
                if assignment[a as usize] == assignment[b as usize] {
                    continue;
                }
                let h = self.hops(NodeId(a), NodeId(b));
                best = Some(best.map_or(h, |m| m.min(h)));
                if best == Some(1) {
                    return best; // torus minimum for distinct tiles
                }
            }
        }
        best
    }

    /// Average hop distance from `src` to all other tiles (useful for
    /// calibration tests).
    pub fn mean_hops_from(self, src: NodeId) -> f64 {
        let total: u32 = (0..self.tiles())
            .filter(|&t| NodeId(t) != src)
            .map(|t| self.hops(src, NodeId(t)) as u32)
            .sum();
        total as f64 / (self.tiles() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_tiles_shapes() {
        assert_eq!(Torus::for_tiles(64), Torus::new(8, 8));
        assert_eq!(Torus::for_tiles(32), Torus::new(8, 4));
        assert_eq!(Torus::for_tiles(16), Torus::new(4, 4));
        assert_eq!(Torus::for_tiles(1), Torus::new(1, 1));
    }

    #[test]
    fn non_pow2_tiles_degenerate_to_a_ring() {
        assert_eq!(Torus::for_tiles(3), Torus::new(3, 1));
        assert_eq!(Torus::for_tiles(48), Torus::new(48, 1));
        // A 3-ring wraps: 0 → 2 is one hop, not two.
        let t = Torus::for_tiles(3);
        assert_eq!(t.hops(NodeId(0), NodeId(2)), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tiles_panics() {
        Torus::for_tiles(0);
    }

    #[test]
    fn coords_roundtrip() {
        let t = Torus::new(8, 8);
        for n in 0..64 {
            let (x, y) = t.coords(NodeId(n));
            assert_eq!(t.node_at(x, y), NodeId(n));
        }
    }

    #[test]
    fn hops_symmetric_and_wrapping() {
        let t = Torus::new(8, 8);
        for a in 0..64u16 {
            for b in 0..64u16 {
                let h = t.hops(NodeId(a), NodeId(b));
                assert_eq!(h, t.hops(NodeId(b), NodeId(a)));
                assert!(h <= 8, "max torus distance is cols/2 + rows/2");
            }
        }
        assert_eq!(t.hops(NodeId(0), NodeId(7)), 1); // row wrap
        assert_eq!(t.hops(NodeId(0), NodeId(56)), 1); // column wrap
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
    }

    #[test]
    fn triangle_inequality_samples() {
        let t = Torus::new(8, 4);
        for a in 0..32u16 {
            for b in 0..32u16 {
                for c in [0u16, 5, 17, 31] {
                    assert!(
                        t.hops(NodeId(a), NodeId(b))
                            <= t.hops(NodeId(a), NodeId(c)) + t.hops(NodeId(c), NodeId(b))
                    );
                }
            }
        }
    }

    #[test]
    fn center_is_central() {
        let t = Torus::new(8, 8);
        let c = t.center();
        // The centre's mean distance is no worse than a corner's.
        assert!(t.mean_hops_from(c) <= t.mean_hops_from(NodeId(0)) + 1e-9);
    }

    #[test]
    fn id_conversions() {
        assert_eq!(NodeId::from(CoreId(5)), NodeId(5));
        assert_eq!(NodeId::from(DirId(6)), NodeId(6));
        assert_eq!(NodeId(3).idx(), 3);
    }

    #[test]
    #[should_panic(expected = "outside torus")]
    fn out_of_range_coords_panics() {
        Torus::new(2, 2).coords(NodeId(4));
    }
}
