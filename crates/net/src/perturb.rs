//! Deterministic delivery-time perturbation for fault/timing fuzzing.
//!
//! The protocols are supposed to stay correct under *arbitrary* message
//! timings (the paper argues this informally; Appendix A enumerates the
//! races). The stock [`Network`](crate::Network) model is far too polite
//! to exercise those races: latencies are a pure function of distance and
//! injection contention, so message orderings barely vary between runs.
//!
//! A [`PerturbationConfig`] attaches a seeded adversary to the network:
//! every delivery picks up a deterministic pseudo-random jitter plus a
//! per-traffic-class extra latency. Messages between *different*
//! (src, dst) pairs reorder freely; deliveries on the *same* ordered pair
//! are clamped to remain FIFO by default, because the
//! `sb_proto::CommitProtocol` contract guarantees protocols that
//! same-pair messages are not arbitrarily reordered.
//!
//! The layer is strictly opt-in: a network built without a perturbation
//! takes the exact same code path as before and produces bit-identical
//! results (guarded by the golden fig-7 snapshot).

use sb_engine::Xoshiro256;

use crate::traffic::TrafficClass;

/// Seeded timing-adversary parameters for a [`Network`](crate::Network).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerturbationConfig {
    /// Seed of the perturbation RNG stream (independent from the
    /// workload seed, so `(workload_seed, perturbation_seed)` pairs
    /// replay exactly).
    pub seed: u64,
    /// Maximum uniform extra delay added per delivery, in cycles
    /// (each message draws from `0..=max_jitter`).
    pub max_jitter: u64,
    /// Fixed extra latency per traffic class, indexed by
    /// [`TrafficClass::index`] (order of [`TrafficClass::ALL`]). Models
    /// e.g. a slow virtual channel for large commit messages.
    pub class_extra: [u64; 5],
    /// Keep deliveries on the same ordered (src, dst) pair FIFO by
    /// clamping each arrival to be no earlier than the pair's previous
    /// one. On by default: the [`sb_proto::CommitProtocol`] contract
    /// promises protocols point-to-point ordering, so breaking it finds
    /// host-model bugs, not protocol bugs.
    pub preserve_pair_order: bool,
}

impl PerturbationConfig {
    /// Derives a full adversary from one seed: jitter up to ~2 link
    /// traversals and small random per-class skews, pair-FIFO preserved.
    /// This is what the fuzzer uses — one `u64` fully describes the
    /// timing adversary of a run.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed ^ 0xadd1_c7ed_ba5e_1e55);
        let max_jitter = 3 + rng.gen_range(46); // 3..=48 cycles
        let mut class_extra = [0u64; 5];
        for e in &mut class_extra {
            *e = rng.gen_range(25); // 0..=24 cycles
        }
        PerturbationConfig {
            seed,
            max_jitter,
            class_extra,
            preserve_pair_order: true,
        }
    }
}

/// Live perturbation state owned by a [`Network`](crate::Network).
#[derive(Clone, Debug)]
pub(crate) struct Perturbation {
    cfg: PerturbationConfig,
    rng: Xoshiro256,
    /// Last perturbed arrival per ordered (src, dst) pair, for the
    /// pair-FIFO clamp. Indexed `src * tiles + dst`.
    last_arrival: Vec<u64>,
    tiles: usize,
}

impl Perturbation {
    pub(crate) fn new(cfg: PerturbationConfig, tiles: u16) -> Self {
        Perturbation {
            rng: Xoshiro256::new(cfg.seed),
            last_arrival: vec![0; tiles as usize * tiles as usize],
            tiles: tiles as usize,
            cfg,
        }
    }

    /// Perturbs one delivery: base arrival time in, adversarial arrival
    /// time out (never earlier than the base).
    pub(crate) fn perturb(
        &mut self,
        src: usize,
        dst: usize,
        class: TrafficClass,
        base: u64,
    ) -> u64 {
        let mut arrive = base
            + self.cfg.class_extra[class.index()]
            + self.rng.gen_range(self.cfg.max_jitter + 1);
        if self.cfg.preserve_pair_order {
            let slot = &mut self.last_arrival[src * self.tiles + dst];
            arrive = arrive.max(*slot);
            *slot = arrive;
        }
        arrive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_seed_sensitive() {
        let a = PerturbationConfig::from_seed(7);
        let b = PerturbationConfig::from_seed(7);
        assert_eq!(a, b);
        let c = PerturbationConfig::from_seed(8);
        assert_ne!(a, c, "different seeds give different adversaries");
        assert!(a.preserve_pair_order);
        assert!(a.max_jitter >= 3);
    }

    #[test]
    fn perturb_never_moves_a_delivery_earlier() {
        let mut p = Perturbation::new(PerturbationConfig::from_seed(11), 8);
        for i in 0..200u64 {
            let base = i * 13;
            let got = p.perturb(
                (i % 8) as usize,
                ((i + 3) % 8) as usize,
                TrafficClass::MemRd,
                base,
            );
            assert!(got >= base);
        }
    }

    #[test]
    fn pair_order_is_preserved_when_requested() {
        let mut p = Perturbation::new(PerturbationConfig::from_seed(3), 4);
        let mut last = 0;
        for i in 0..500u64 {
            // Monotone injection on one pair must stay monotone on arrival.
            let got = p.perturb(1, 2, TrafficClass::SmallCMessage, i);
            assert!(got >= last, "pair FIFO violated at {i}");
            last = got;
        }
    }
}
