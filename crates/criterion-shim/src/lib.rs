//! A small, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace renames
//! this crate to `criterion` via
//! `criterion = { package = "sb-criterion", path = ... }` and the benches
//! keep their upstream-compatible spelling. It implements the surface the
//! workspace benches use — [`Criterion::benchmark_group`],
//! [`Criterion::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`] — with a simple wall-clock measurement loop:
//! batch size is calibrated so one batch takes ≥ ~5 ms, then up to
//! `sample_size` batches are timed (bounded by `measurement_time`), and
//! the mean/min per-iteration time is printed.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark, as recorded by [`Bencher::iter`].
#[derive(Clone, Copy, Debug)]
struct Measurement {
    mean: Duration,
    min: Duration,
    batch: u64,
    samples: usize,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Times one routine. Handed to the closures given to
/// [`Criterion::bench_function`] / [`BenchmarkGroup::bench_with_input`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            result: None,
        }
    }

    /// Measures `routine`, batching fast routines so each timed sample is
    /// long enough for the clock to resolve.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: double the batch size until one batch takes >= 5 ms.
        let mut batch: u64 = 1;
        let first = loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            if dt >= Duration::from_millis(5) || batch >= 1 << 22 {
                break dt;
            }
            batch = batch.saturating_mul(2);
        };
        let mut per_iter: Vec<Duration> = vec![first / batch as u32];
        let started = Instant::now();
        while per_iter.len() < self.sample_size.max(2) && started.elapsed() < self.measurement_time
        {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(t.elapsed() / batch as u32);
        }
        let total: Duration = per_iter.iter().sum();
        self.result = Some(Measurement {
            mean: total / per_iter.len() as u32,
            min: *per_iter.iter().min().expect("at least one sample"),
            batch,
            samples: per_iter.len(),
        });
    }
}

/// A `function/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one label.
    pub fn new<A: std::fmt::Display, B: std::fmt::Display>(func: A, param: B) -> Self {
        BenchmarkId {
            full: format!("{func}/{param}"),
        }
    }
}

/// A group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; warm-up is folded into batch
    /// calibration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Upper bound on time spent collecting samples for one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id` within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.full), b.result);
        self
    }

    /// Benchmarks `f`, labelled by `name` within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.result);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

fn report(label: &str, m: Option<Measurement>) {
    match m {
        Some(m) => println!(
            "bench {label:<56} mean {:>10}  min {:>10}  ({} samples x {} iters)",
            fmt_duration(m.mean),
            fmt_duration(m.min),
            m.samples,
            m.batch,
        ),
        None => println!("bench {label:<56} (no measurement recorded)"),
    }
}

/// The benchmark driver. One per process, created by [`criterion_main!`].
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(10, Duration::from_secs(5));
        f(&mut b);
        report(name, b.result);
        self
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_format() {
        assert_eq!(BenchmarkId::new("app", 64).full, "app/64");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3, Duration::from_millis(50));
        b.iter(|| std::hint::black_box(41u64) + 1);
        let m = b.result.expect("measured");
        assert!(m.samples >= 1);
        assert!(m.mean > Duration::ZERO);
    }
}
