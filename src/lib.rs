//! # ScalableBulk — a full reproduction of the MICRO 2010 paper
//!
//! This crate is the facade of a Rust workspace that reimplements, from
//! scratch, the system described in *Qian, Ahn, Torrellas: "ScalableBulk:
//! Scalable Cache Coherence for Atomic Blocks in a Lazy Environment"*
//! (MICRO 2010): a directory-based cache-coherence protocol that commits
//! *chunks* (atomic blocks of ~2000 instructions) in a lazy
//! conflict-detection environment with highly-overlapped, scalable
//! commits.
//!
//! The workspace contains every substrate the paper depends on:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`engine`] | `sb-engine` | deterministic discrete-event kernel |
//! | [`sigs`] | `sb-sigs` | Bulk-style hardware address signatures |
//! | [`mem`] | `sb-mem` | caches, MSHRs, page mapping, directory state |
//! | [`net`] | `sb-net` | 2D-torus interconnect and traffic classes |
//! | [`chunks`] | `sb-chunks` | chunk model and per-core chunk window |
//! | [`proto`] | `sb-proto` | the protocol seam + deterministic test fabric |
//! | [`core`] | `sb-core` | **the ScalableBulk protocol** (the paper's contribution) |
//! | [`baselines`] | `sb-baselines` | Scalable TCC, SEQ-PRO, BulkSC |
//! | [`workloads`] | `sb-workloads` | synthetic SPLASH-2 / PARSEC models |
//! | [`stats`] | `sb-stats` | per-figure metric collectors |
//! | [`sim`] | `sb-sim` | the full-system simulator + figure harness |
//!
//! # Quickstart
//!
//! ```
//! use scalablebulk::prelude::*;
//!
//! // Run Barnes on a 16-core machine under ScalableBulk.
//! let mut cfg = SimConfig::paper_default(16, AppProfile::barnes(), ProtocolKind::ScalableBulk);
//! cfg.insns_per_thread = 6_000;
//! let result = run_simulation(&cfg);
//! assert!(result.commits > 0);
//! println!(
//!     "wall={}cy commits={} mean commit latency={:.0}cy",
//!     result.wall_cycles,
//!     result.commits,
//!     result.latency.mean()
//! );
//! ```
//!
//! To regenerate the paper's figures:
//!
//! ```text
//! cargo run --release -p sb-sim --bin figures -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sb_baselines as baselines;
pub use sb_chunks as chunks;
pub use sb_core as core;
pub use sb_engine as engine;
pub use sb_mem as mem;
pub use sb_net as net;
pub use sb_proto as proto;
pub use sb_sigs as sigs;
pub use sb_sim as sim;
pub use sb_stats as stats;
pub use sb_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use sb_baselines::{BulkSc, BulkScConfig, Seq, Tcc, TccConfig};
    pub use sb_chunks::{ActiveChunk, ChunkSpec, ChunkTag, ChunkWindow, CommitRequest};
    pub use sb_core::{SbConfig, ScalableBulk};
    pub use sb_engine::Cycle;
    pub use sb_mem::{Addr, CoreId, DirId, LineAddr};
    pub use sb_proto::{CommitProtocol, Fabric, FabricConfig, ProtocolKind};
    pub use sb_sigs::{Signature, SignatureConfig};
    pub use sb_sim::{run_app, run_simulation, RunResult, SimConfig};
    pub use sb_stats::TextTable;
    pub use sb_workloads::{AppProfile, Suite, WorkloadGen};
}
